/**
 * @file
 * Shared plain-data types and error codes for the VFS layer.
 *
 * These are header-only PODs exchanged across cubicle boundaries by
 * pointer (through windows) or by value; they deliberately contain no
 * owning pointers.
 */

#ifndef CUBICLEOS_LIBOS_VFS_TYPES_H_
#define CUBICLEOS_LIBOS_VFS_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace cubicleos::libos {

/** POSIX-flavoured error codes returned as negative ints. */
enum VfsErr : int {
    kOk = 0,
    kErrNoEnt = -2,    ///< no such file or directory
    kErrIo = -5,       ///< I/O error
    kErrBadF = -9,     ///< bad file descriptor
    kErrBusy = -16,    ///< resource busy (e.g. borrowed blocks)
    kErrNoMem = -12,   ///< out of memory
    kErrExist = -17,   ///< file exists
    kErrNotDir = -20,  ///< not a directory
    kErrIsDir = -21,   ///< is a directory
    kErrInval = -22,   ///< invalid argument
    kErrMFile = -24,   ///< too many open files
    kErrNoSpc = -28,   ///< no space left on device
    kErrNameTooLong = -36,
    kErrNotEmpty = -39, ///< directory not empty
    kErrNoSys = -38,   ///< not implemented by this backend

    /**
     * The component that would have served this call is destroyed or
     * draining (DESIGN.md §15). Outside the POSIX range on purpose:
     * callers distinguish "your file is bad" from "your filesystem
     * died" and may retry after System::restartComponent. Numerically
     * equal to core::kPeerFaultVerdict so ring verdicts pass through
     * unconverted.
     */
    kErrPeerFault = -131,
};

/** open() flags (subset). */
enum VfsOpenFlags : int {
    kRdOnly = 0x0,
    kWrOnly = 0x1,
    kRdWr = 0x2,
    kCreate = 0x40,
    kTrunc = 0x200,
    kAppend = 0x400,
    kDirectory = 0x10000,
};

/** lseek() whence values. */
enum VfsWhence : int {
    kSeekSet = 0,
    kSeekCur = 1,
    kSeekEnd = 2,
};

/** File mode bits (subset: type only). */
enum VfsMode : uint32_t {
    kModeFile = 0x8000,
    kModeDir = 0x4000,
};

/** Backend node identifier (inode number analogue). */
using NodeId = uint64_t;

/** Sentinel for "no node". */
inline constexpr NodeId kNoNode = ~0ull;

/** stat() result. */
struct VfsStat {
    uint64_t size = 0;
    uint32_t mode = 0;
    uint32_t nlink = 0;
    NodeId node = kNoNode;

    bool isDir() const { return (mode & kModeDir) != 0; }
    bool isFile() const { return (mode & kModeFile) != 0; }
};

/** readdir() entry. */
struct VfsDirent {
    char name[60];
    uint32_t type; ///< VfsMode of the entry
};

/**
 * A borrowed, grant-protected span of a file's backing blocks
 * (the zero-copy sendfile unit).
 *
 * Returned by vfs_borrow: the backend pins the blocks, adds them to a
 * window it owns, and opens that window for the peer cubicle named by
 * the caller. The span stays readable by the peer until vfs_release
 * is called with @p token. A span is always contiguous memory: the
 * backend may merge physically-adjacent blocks into one multi-block
 * span (readahead) but never stitches discontiguous blocks, so a
 * large file is still served as a sequence of borrows — just fewer,
 * larger ones. The caller bounds span length with the borrow's
 * max_len argument.
 */
struct VfsSpan {
    const std::byte *ptr = nullptr; ///< first borrowed byte
    uint64_t len = 0;               ///< span length (contiguous bytes)
    uint64_t token = 0;             ///< handle for vfs_release
};

/** Maximum path length accepted by the VFS. */
inline constexpr std::size_t kMaxPath = 512;

} // namespace cubicleos::libos

#endif // CUBICLEOS_LIBOS_VFS_TYPES_H_
