/**
 * @file
 * The BOOT cubicle: late system initialisation.
 *
 * Registered last so it runs after every other component's init: wires
 * cubicle heaps through the ALLOC component and mounts the root file
 * system. Mirrors Unikraft's boot sequence, which CubicleOS isolates
 * into its own cubicle (BOOT appears in the paper's Fig. 8).
 */

#ifndef CUBICLEOS_LIBOS_BOOT_H_
#define CUBICLEOS_LIBOS_BOOT_H_

#include <string>

#include "core/system.h"
#include "libos/alloc.h"
#include "libos/ukapi.h"

namespace cubicleos::libos {

/** The isolated boot component. */
class BootComponent : public core::Component {
  public:
    /**
     * @param rootfs backend to mount at "/", empty to skip mounting
     * @param wire_heaps route heap chunk requests through ALLOC
     */
    explicit BootComponent(std::string rootfs = "ramfs",
                           bool wire_heaps = true)
        : rootfs_(std::move(rootfs)), wireHeaps_(wire_heaps)
    {}

    core::ComponentSpec spec() const override
    {
        core::ComponentSpec s;
        s.name = "boot";
        s.kind = core::CubicleKind::kIsolated;
        return s;
    }

    void registerExports(core::Exporter &) override {}

    void init() override
    {
        if (wireHeaps_)
            wireHeapsThroughAlloc(*sys());
        if (!rootfs_.empty()) {
            const int rc = mountRoot(*sys(), rootfs_);
            if (rc != 0) {
                throw core::LoaderError("boot: mounting '" + rootfs_ +
                                        "' failed with " +
                                        std::to_string(rc));
            }
        }
    }

  private:
    std::string rootfs_;
    bool wireHeaps_;
};

} // namespace cubicleos::libos

#endif // CUBICLEOS_LIBOS_BOOT_H_
