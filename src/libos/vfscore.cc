#include "libos/vfscore.h"

namespace cubicleos::libos {

namespace {

/**
 * Converts core::PeerFault from a backend forward into kErrPeerFault
 * at the export boundary: a destroyed backend (DESIGN.md §15) must
 * surface to the application as an error code, and a real generated
 * trampoline could not propagate a C++ exception across cubicles
 * anyway.
 */
template <typename R, typename Fn>
R forwarded(Fn &&fn)
{
    try {
        return fn();
    } catch (const core::PeerFault &) {
        return static_cast<R>(kErrPeerFault);
    }
}

} // namespace

void
VfsComponent::init()
{
    libc_ = Libc(*sys());
    fds_.resize(64);
}

bool
VfsComponent::checkPath(const char *path)
{
    if (!path)
        return false;
    const std::size_t n = libc_.strnlen(path, kMaxPath);
    return n > 0 && n < kMaxPath;
}

VfsComponent::FileDesc *
VfsComponent::fdAt(int fd)
{
    if (fd < 0 || static_cast<std::size_t>(fd) >= fds_.size() ||
        !fds_[static_cast<std::size_t>(fd)].used) {
        return nullptr;
    }
    return &fds_[static_cast<std::size_t>(fd)];
}

int
VfsComponent::doMount(const char *fsname)
{
    if (!checkPath(fsname))
        return kErrInval;
    if (backend_.mounted)
        return kErrExist;

    // Resolve the backend callback table as dynamic symbols so every
    // entry goes through a cross-cubicle trampoline (paper §5.2).
    const std::string fs(fsname);
    core::System &s = *sys();
    try {
        backend_.lookup =
            s.resolve<NodeId(const char *)>(fs, fs + "_lookup");
        backend_.create =
            s.resolve<NodeId(const char *, uint32_t)>(fs, fs + "_create");
        backend_.remove = s.resolve<int(const char *)>(fs, fs + "_remove");
        backend_.mkdir = s.resolve<int(const char *)>(fs, fs + "_mkdir");
        backend_.read =
            s.resolve<int64_t(NodeId, uint64_t, void *, std::size_t)>(
                fs, fs + "_read");
        backend_.write = s.resolve<int64_t(NodeId, uint64_t, const void *,
                                           std::size_t)>(fs, fs + "_write");
        backend_.truncate =
            s.resolve<int(NodeId, uint64_t)>(fs, fs + "_truncate");
        backend_.getattr =
            s.resolve<int(NodeId, VfsStat *)>(fs, fs + "_getattr");
        backend_.readdir =
            s.resolve<int(const char *, uint64_t, VfsDirent *)>(
                fs, fs + "_readdir");
        backend_.sync = s.resolve<int(NodeId)>(fs, fs + "_sync");
    } catch (const core::LinkError &) {
        return kErrNoSys;
    }
    // Borrow/release is an optional backend capability: a backend
    // without it still mounts, and vfs_borrow reports kErrNoSys.
    try {
        backend_.borrow =
            s.resolve<int(NodeId, uint64_t, core::Cid, std::size_t,
                          VfsSpan *)>(fs, fs + "_borrow");
        backend_.release =
            s.resolve<int(NodeId, uint64_t)>(fs, fs + "_release");
        backend_.canBorrow = true;
    } catch (const core::LinkError &) {
        backend_.canBorrow = false;
    }
    backend_.fsname = fs;
    backend_.mounted = true;
    return kOk;
}

int
VfsComponent::doOpen(const char *path, int flags)
{
    if (!backend_.mounted)
        return kErrIo;
    if (!checkPath(path))
        return kErrInval;

    NodeId node = backend_.lookup(path);
    if (node == kNoNode) {
        if (!(flags & kCreate))
            return kErrNoEnt;
        node = backend_.create(path, kModeFile);
        if (node == kNoNode)
            return kErrNoEnt;
    } else if (flags & kTrunc) {
        const int rc = backend_.truncate(node, 0);
        if (rc < 0)
            return rc;
    }

    for (std::size_t fd = 0; fd < fds_.size(); ++fd) {
        if (!fds_[fd].used) {
            uint64_t off = 0;
            if (flags & kAppend) {
                VfsStat st;
                if (backend_.getattr(node, &st) == kOk)
                    off = st.size;
            }
            fds_[fd] = FileDesc{true, node, off, flags};
            return static_cast<int>(fd);
        }
    }
    return kErrMFile;
}

int
VfsComponent::doClose(int fd)
{
    FileDesc *f = fdAt(fd);
    if (!f)
        return kErrBadF;
    f->used = false;
    return kOk;
}

int64_t
VfsComponent::doRead(int fd, void *buf, std::size_t n)
{
    FileDesc *f = fdAt(fd);
    if (!f)
        return kErrBadF;
    // The VFS validates the destination before dispatching (Fig. 2:
    // VFS accesses BUF itself); with a separated backend this access
    // and the backend's copy carry different tags.
    sys()->touch(buf, n, hw::Access::kWrite);
    const int64_t got = backend_.read(f->node, f->offset, buf, n);
    if (got > 0)
        f->offset += static_cast<uint64_t>(got);
    return got;
}

int64_t
VfsComponent::doWrite(int fd, const void *buf, std::size_t n)
{
    FileDesc *f = fdAt(fd);
    if (!f)
        return kErrBadF;
    sys()->touch(buf, n, hw::Access::kRead);
    const int64_t put = backend_.write(f->node, f->offset, buf, n);
    if (put > 0)
        f->offset += static_cast<uint64_t>(put);
    return put;
}

int64_t
VfsComponent::doPread(int fd, void *buf, std::size_t n, uint64_t off)
{
    FileDesc *f = fdAt(fd);
    if (!f)
        return kErrBadF;
    sys()->touch(buf, n, hw::Access::kWrite);
    return backend_.read(f->node, off, buf, n);
}

int64_t
VfsComponent::doPwrite(int fd, const void *buf, std::size_t n,
                       uint64_t off)
{
    FileDesc *f = fdAt(fd);
    if (!f)
        return kErrBadF;
    sys()->touch(buf, n, hw::Access::kRead);
    return backend_.write(f->node, off, buf, n);
}

int64_t
VfsComponent::doLseek(int fd, int64_t off, int whence)
{
    FileDesc *f = fdAt(fd);
    if (!f)
        return kErrBadF;
    int64_t base = 0;
    switch (whence) {
      case kSeekSet:
        base = 0;
        break;
      case kSeekCur:
        base = static_cast<int64_t>(f->offset);
        break;
      case kSeekEnd: {
        VfsStat st;
        const int rc = backend_.getattr(f->node, &st);
        if (rc < 0)
            return rc;
        base = static_cast<int64_t>(st.size);
        break;
      }
      default:
        return kErrInval;
    }
    const int64_t pos = base + off;
    if (pos < 0)
        return kErrInval;
    f->offset = static_cast<uint64_t>(pos);
    return pos;
}

int
VfsComponent::doFstat(int fd, VfsStat *st)
{
    FileDesc *f = fdAt(fd);
    if (!f)
        return kErrBadF;
    return backend_.getattr(f->node, st);
}

int
VfsComponent::doStat(const char *path, VfsStat *st)
{
    if (!backend_.mounted || !checkPath(path))
        return kErrInval;
    const NodeId node = backend_.lookup(path);
    if (node == kNoNode)
        return kErrNoEnt;
    return backend_.getattr(node, st);
}

int
VfsComponent::doUnlink(const char *path)
{
    if (!backend_.mounted || !checkPath(path))
        return kErrInval;
    return backend_.remove(path);
}

int
VfsComponent::doMkdir(const char *path)
{
    if (!backend_.mounted || !checkPath(path))
        return kErrInval;
    return backend_.mkdir(path);
}

int
VfsComponent::doReaddir(const char *path, uint64_t idx, VfsDirent *out)
{
    if (!backend_.mounted || !checkPath(path))
        return kErrInval;
    return backend_.readdir(path, idx, out);
}

int
VfsComponent::doFtruncate(int fd, uint64_t size)
{
    FileDesc *f = fdAt(fd);
    if (!f)
        return kErrBadF;
    return backend_.truncate(f->node, size);
}

int
VfsComponent::doFsync(int fd)
{
    FileDesc *f = fdAt(fd);
    if (!f)
        return kErrBadF;
    return backend_.sync(f->node);
}

int
VfsComponent::doBorrow(int fd, uint64_t off, core::Cid peer,
                       std::size_t max_len, VfsSpan *out)
{
    FileDesc *f = fdAt(fd);
    if (!f)
        return kErrBadF;
    if (!backend_.canBorrow)
        return kErrNoSys;
    if (!out)
        return kErrInval;
    // Validate the out-struct like any other caller pointer before the
    // backend writes through it (Fig. 2 discipline).
    sys()->touch(out, sizeof(*out), hw::Access::kWrite);
    return backend_.borrow(f->node, off, peer, max_len, out);
}

int
VfsComponent::doRelease(int fd, uint64_t token)
{
    FileDesc *f = fdAt(fd);
    if (!f)
        return kErrBadF;
    if (!backend_.canBorrow)
        return kErrNoSys;
    return backend_.release(f->node, token);
}

void
VfsComponent::registerExports(core::Exporter &exp)
{
    exp.fn<int(const char *)>("vfs_mount", [this](const char *fs) {
        return forwarded<int>([&] { return doMount(fs); });
    });
    exp.fn<int(const char *, int)>(
        "vfs_open", [this](const char *p, int flags) {
            return forwarded<int>([&] { return doOpen(p, flags); });
        });
    exp.fn<int(int)>("vfs_close", [this](int fd) {
        return forwarded<int>([&] { return doClose(fd); });
    });
    exp.fn<int64_t(int, void *, std::size_t)>(
        "vfs_read", [this](int fd, void *buf, std::size_t n) {
            return forwarded<int64_t>(
                [&] { return doRead(fd, buf, n); });
        });
    exp.fn<int64_t(int, const void *, std::size_t)>(
        "vfs_write", [this](int fd, const void *buf, std::size_t n) {
            return forwarded<int64_t>(
                [&] { return doWrite(fd, buf, n); });
        });
    exp.fn<int64_t(int, void *, std::size_t, uint64_t)>(
        "vfs_pread",
        [this](int fd, void *buf, std::size_t n, uint64_t off) {
            return forwarded<int64_t>(
                [&] { return doPread(fd, buf, n, off); });
        });
    exp.fn<int64_t(int, const void *, std::size_t, uint64_t)>(
        "vfs_pwrite",
        [this](int fd, const void *buf, std::size_t n, uint64_t off) {
            return forwarded<int64_t>(
                [&] { return doPwrite(fd, buf, n, off); });
        });
    exp.fn<int64_t(int, int64_t, int)>(
        "vfs_lseek", [this](int fd, int64_t off, int whence) {
            return forwarded<int64_t>(
                [&] { return doLseek(fd, off, whence); });
        });
    exp.fn<int(int, VfsStat *)>(
        "vfs_fstat", [this](int fd, VfsStat *st) {
            return forwarded<int>([&] { return doFstat(fd, st); });
        });
    exp.fn<int(const char *, VfsStat *)>(
        "vfs_stat", [this](const char *p, VfsStat *st) {
            return forwarded<int>([&] { return doStat(p, st); });
        });
    exp.fn<int(const char *)>("vfs_unlink", [this](const char *p) {
        return forwarded<int>([&] { return doUnlink(p); });
    });
    exp.fn<int(const char *)>("vfs_mkdir", [this](const char *p) {
        return forwarded<int>([&] { return doMkdir(p); });
    });
    exp.fn<int(const char *, uint64_t, VfsDirent *)>(
        "vfs_readdir", [this](const char *p, uint64_t i, VfsDirent *d) {
            return forwarded<int>([&] { return doReaddir(p, i, d); });
        });
    exp.fn<int(int, uint64_t)>(
        "vfs_ftruncate", [this](int fd, uint64_t size) {
            return forwarded<int>([&] { return doFtruncate(fd, size); });
        });
    exp.fn<int(int)>("vfs_fsync", [this](int fd) {
        return forwarded<int>([&] { return doFsync(fd); });
    });
    exp.fn<int(int, uint64_t, core::Cid, std::size_t, VfsSpan *)>(
        "vfs_borrow",
        [this](int fd, uint64_t off, core::Cid peer, std::size_t max_len,
               VfsSpan *out) {
            return forwarded<int>(
                [&] { return doBorrow(fd, off, peer, max_len, out); });
        });
    exp.fn<int(int, uint64_t)>(
        "vfs_release", [this](int fd, uint64_t token) {
            return forwarded<int>([&] { return doRelease(fd, token); });
        });
}

} // namespace cubicleos::libos
