/**
 * @file
 * Additional shared cubicles: CTYPE and UKMATH.
 *
 * The paper's SQLite deployment uses four shared cubicles (§6.4);
 * besides LIBC and RANDOM these provide character classification and
 * small math helpers — stateless, frequently called code that would
 * be wasteful to isolate (every call would pay a trampoline for a
 * few-cycle function).
 */

#ifndef CUBICLEOS_LIBOS_SHARED_UTILS_H_
#define CUBICLEOS_LIBOS_SHARED_UTILS_H_

#include <cctype>
#include <cmath>

#include "core/system.h"

namespace cubicleos::libos {

/** Shared character-classification cubicle (ctype). */
class CtypeComponent : public core::Component {
  public:
    core::ComponentSpec spec() const override
    {
        core::ComponentSpec s;
        s.name = "ctype";
        s.kind = core::CubicleKind::kShared;
        return s;
    }

    void registerExports(core::Exporter &exp) override
    {
        exp.fn<int(int)>("isdigit", [](int c) {
            return std::isdigit(static_cast<unsigned char>(c)) ? 1 : 0;
        });
        exp.fn<int(int)>("isalpha", [](int c) {
            return std::isalpha(static_cast<unsigned char>(c)) ? 1 : 0;
        });
        exp.fn<int(int)>("isspace", [](int c) {
            return std::isspace(static_cast<unsigned char>(c)) ? 1 : 0;
        });
        exp.fn<int(int)>("toupper", [](int c) {
            return std::toupper(static_cast<unsigned char>(c));
        });
        exp.fn<int(int)>("tolower", [](int c) {
            return std::tolower(static_cast<unsigned char>(c));
        });
    }
};

/** Shared math-helpers cubicle. */
class UkmathComponent : public core::Component {
  public:
    core::ComponentSpec spec() const override
    {
        core::ComponentSpec s;
        s.name = "ukmath";
        s.kind = core::CubicleKind::kShared;
        return s;
    }

    void registerExports(core::Exporter &exp) override
    {
        exp.fn<double(double)>("sqrt",
                               [](double x) { return std::sqrt(x); });
        exp.fn<double(double)>("log",
                               [](double x) { return std::log(x); });
        exp.fn<double(double, double)>(
            "pow", [](double b, double e) { return std::pow(b, e); });
        exp.fn<int64_t(int64_t, int64_t)>(
            "muldiv64", [](int64_t a, int64_t b) {
                return b == 0 ? 0 : a / b;
            });
    }
};

} // namespace cubicleos::libos

#endif // CUBICLEOS_LIBOS_SHARED_UTILS_H_
