#include "libos/time.h"

namespace cubicleos::libos {

void
TimeComponent::init()
{
    platTicks_ = sys()->resolve<uint64_t()>("plat", "plat_ticks_ns");
    bootNs_ = platTicks_();
}

void
TimeComponent::registerExports(core::Exporter &exp)
{
    exp.fn<uint64_t()>("time_monotonic_ns",
                       [this] { return platTicks_() - bootNs_; });

    exp.fn<uint64_t()>("time_wall_ns", [this] {
        // Wall epoch fixed at boot for determinism.
        return platTicks_();
    });

    exp.fn<void(uint64_t)>("time_busy_wait_ns", [this](uint64_t ns) {
        // Modelled sleep: advances the virtual clock instead of
        // blocking the host thread.
        sys()->clock().charge(
            static_cast<uint64_t>(ns * hw::cost::kCpuGhz));
    });
}

} // namespace cubicleos::libos
