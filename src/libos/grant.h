/**
 * @file
 * The grant layer: shared window-management glue for every port.
 *
 * Every porting layer used to hand-roll its own add/open…remove/close
 * sequences over the raw System::window* API. This header extracts
 * that plumbing into four reusable types, so the window discipline of
 * the paper — Fig. 2's open→call→close pattern, the nested-call rule
 * (§5.6: the caller opens the window for every cubicle the call will
 * traverse), page-aligned staging (§5.3) and hot windows (§8) — is
 * implemented exactly once:
 *
 *  - PeerSet      — the set of cubicles a call traverses (ACL set).
 *  - GrantWindow  — an owned window descriptor. Remembers the owner
 *                   cubicle at construction so it can be destroyed
 *                   from any context, and carries the hot-window
 *                   staging state for pooled reuse across calls.
 *  - Grant        — RAII bracket of one cross-call: stages the buffer,
 *                   opens the ACL, and on destruction (including via
 *                   exceptions thrown by the callee) removes the range,
 *                   closes the ACL and reclaims the pages with one
 *                   modelled touch.
 *  - XferArena    — page-aligned staging pages behind a persistent
 *                   multi-peer window, for paths and small
 *                   out-structures that must never share a page with
 *                   unrelated caller data.
 *
 * Raw windowAdd/windowOpen/windowCloseAll calls outside grant.cc are
 * forbidden in src/libos, src/apps and bench (enforced by the
 * grant_wiring_lint ctest); ports go through these types.
 *
 * Thread-safety: the grant layer deliberately holds NO locks of its
 * own (the locking_wrapper_lint ctest keeps it that way). A
 * GrantWindow/Grant/XferArena instance belongs to one call edge and is
 * externally synchronised by its owner — concurrent edges use distinct
 * instances (one per worker, as in bench_mt_faults). All shared state
 * a grant touches lives behind the monitor's annotated lock hierarchy
 * (core/locking.h): every method here bottoms out in System::window*
 * calls that take windowMutex_ at rank kWindow, so grant code may be
 * called while holding nothing or locks ranked strictly below kWindow.
 */

#ifndef CUBICLEOS_LIBOS_GRANT_H_
#define CUBICLEOS_LIBOS_GRANT_H_

#include <array>
#include <cstddef>

#include "core/system.h"

namespace cubicleos::libos {

/**
 * The set of peer cubicles one grant opens a window for.
 *
 * Encodes the nested-call rule (§5.6): a call that traverses VFSCORE
 * and then RAMFS needs a window open for both, because the monitor
 * checks the ACL of whichever cubicle actually faults on the buffer.
 */
class PeerSet {
  public:
    static constexpr std::size_t kMaxPeers = 4;

    PeerSet() = default;
    PeerSet(std::initializer_list<core::Cid> cids)
    {
        for (core::Cid cid : cids)
            add(cid);
    }

    void add(core::Cid cid)
    {
        for (std::size_t i = 0; i < n_; ++i)
            if (cids_[i] == cid)
                return; // idempotent, even at capacity
        if (n_ >= kMaxPeers)
            throw core::WindowError("PeerSet: more than " +
                                    std::to_string(kMaxPeers) +
                                    " peers in one grant");
        cids_[n_++] = cid;
    }

    bool contains(core::Cid cid) const
    {
        for (std::size_t i = 0; i < n_; ++i)
            if (cids_[i] == cid)
                return true;
        return false;
    }

    std::size_t size() const { return n_; }
    const core::Cid *begin() const { return cids_.data(); }
    const core::Cid *end() const { return cids_.data() + n_; }

  private:
    std::array<core::Cid, kMaxPeers> cids_{};
    std::size_t n_ = 0;
};

/**
 * Expected-access declaration for window prestaging.
 *
 * A construction-time hint that the peers WILL touch the staged
 * ranges, and how: the grant layer then asks the monitor to retag
 * eagerly at stage/open time (System::windowPrestage) instead of
 * letting every peer pay a first-touch trap. kNone keeps the paper's
 * fully lazy trap-and-map. The hint never widens rights — prestaging
 * only runs for peers already opened in the ACL — and it counts as
 * declared usage for the least-privilege audit, so only hint access
 * that really happens.
 */
enum class Prestage : uint8_t {
    kNone,  ///< lazy: peers fault their first touch (paper default)
    kRead,  ///< peers will read the staged ranges
    kWrite, ///< peers will write (implies read) the staged ranges
};

/**
 * An owned window descriptor with construction-time owner capture.
 *
 * The monitor's ownership rule says only the owning cubicle may manage
 * or destroy a window, so the owner Cid is recorded when the window is
 * created (while executing inside that cubicle) and destruction
 * re-enters it with runAs if needed — never by digging the owner out
 * of page metadata at teardown time.
 *
 * A GrantWindow may be hot (paper §8): it gets a dedicated MPK key,
 * its ACL stays open across calls, and per-call work reduces to
 * re-staging the buffer range when it changes (restage()). This is the
 * grant layer's window pooling: one hot window is reused for every
 * call on the same edge instead of a fresh add/open/close cycle.
 */
class GrantWindow {
  public:
    GrantWindow() = default;

    /**
     * Creates a window owned by the current cubicle. When @p hot, the
     * window is promoted to a hot window and the ACL for @p peers is
     * opened immediately and kept open; otherwise @p peers is only
     * remembered as the default ACL set for open().
     *
     * @p prestage declares the peers' expected access: every stage()
     * or open() then eagerly retags the staged ranges to the opened
     * peers (no effect on hot windows, which are already eager via
     * their dedicated key).
     */
    GrantWindow(core::System &sys, const PeerSet &peers = {},
                bool hot = false, Prestage prestage = Prestage::kNone);
    ~GrantWindow();

    GrantWindow(const GrantWindow &) = delete;
    GrantWindow &operator=(const GrantWindow &) = delete;
    GrantWindow(GrantWindow &&other) noexcept { moveFrom(other); }
    GrantWindow &operator=(GrantWindow &&other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(other);
        }
        return *this;
    }

    bool valid() const { return sys_ != nullptr; }
    bool hot() const { return hot_; }
    core::Wid id() const { return wid_; }
    core::Cid owner() const { return owner_; }
    const PeerSet &peers() const { return peers_; }
    Prestage prestage() const { return prestage_; }

    /** Adds [ptr, ptr+n) to the window (owner-context only). */
    void stage(const void *ptr, std::size_t n);
    /** Removes the range starting at @p ptr. */
    void unstage(const void *ptr);
    /** Opens the ACL for every cubicle in @p peers. */
    void open(const PeerSet &peers);
    /** Closes the ACL for everyone (lazy revocation: no retag, §5.6). */
    void closeAll();

    /**
     * Hot-window re-staging: keeps exactly one staged range and swaps
     * it only when the buffer changes, so steady-state calls on the
     * same buffer cost nothing. Requires hot().
     */
    void restage(const void *ptr, std::size_t n);
    /** The currently staged hot range, or nullptr. */
    const void *staged() const { return staged_; }

    /**
     * Destroys the window, re-entering the owner cubicle when invoked
     * from another context. Idempotent; swallows WindowError during
     * teardown from outside any cubicle.
     */
    void destroy() noexcept;

    /**
     * Forgets the window WITHOUT destroying it. For crash teardown
     * (DESIGN.md §15): Monitor::destroyCubicle already revoked and
     * cleared every window the dead owner held, so the descriptor
     * this object remembers is stale — and its slot may have been
     * reissued to another cubicle, which destroy() must not touch.
     */
    void abandon() noexcept
    {
        sys_ = nullptr;
        wid_ = core::kInvalidWindow;
        staged_ = nullptr;
    }

  private:
    void moveFrom(GrantWindow &other) noexcept;
    /** Eager retag of the staged ranges to every opened peer. */
    void prestageNow();

    core::System *sys_ = nullptr;
    core::Wid wid_ = core::kInvalidWindow;
    core::Cid owner_ = core::kNoCubicle;
    bool hot_ = false;
    Prestage prestage_ = Prestage::kNone;
    PeerSet peers_;
    PeerSet opened_;
    const void *staged_ = nullptr;
};

/**
 * RAII bracket of one buffer grant around a cross-cubicle call.
 *
 * Construction stages the caller's buffer in @p win and opens it for
 * @p peers; destruction — on every path out of the call, including an
 * exception thrown by the callee — removes the range, closes the ACL,
 * and models the caller's next direct access with one touch (the
 * trap-and-map reclaim at the heart of the Fig. 6 overhead).
 *
 * Host-private buffers (outside the simulated machine) are skipped
 * entirely, consistent with System::touch's policy. On a hot window
 * the grant degenerates to restage(): the ACL is already open and the
 * owner reclaims lazily only when it really touches the pages again.
 */
class Grant {
  public:
    Grant() = default;
    /**
     * @p prestage optionally declares expected access for this one
     * call: the staged buffer is eagerly retagged right after the ACL
     * opens, so the callee's first touch does not trap. Ignored on hot
     * windows (already eager).
     *
     * @p prestage_peers names the subset of @p peers that will really
     * touch the buffer (empty = all of them). Under the nested-call
     * rule the ACL often includes pass-through cubicles that only
     * forward the pointer — prestaging those would declare usage that
     * never happens and hide dead ACL entries from the
     * least-privilege audit.
     */
    Grant(core::System &sys, GrantWindow &win, const PeerSet &peers,
          const void *buf, std::size_t n, hw::Access reclaim_access,
          Prestage prestage = Prestage::kNone,
          const PeerSet &prestage_peers = {});
    ~Grant() { release(); }

    Grant(const Grant &) = delete;
    Grant &operator=(const Grant &) = delete;
    Grant(Grant &&other) noexcept { moveFrom(other); }
    Grant &operator=(Grant &&other) noexcept
    {
        if (this != &other) {
            release();
            moveFrom(other);
        }
        return *this;
    }

    /** True while a range is staged and open on a non-hot window. */
    bool active() const { return buf_ != nullptr; }

    /** Early release (idempotent; the destructor calls this). */
    void release() noexcept;

  private:
    void moveFrom(Grant &other) noexcept;

    core::System *sys_ = nullptr;
    GrantWindow *win_ = nullptr;
    const void *buf_ = nullptr;
    std::size_t n_ = 0;
    hw::Access reclaim_ = hw::Access::kRead;
};

/**
 * Page-aligned staging pages behind a persistent multi-peer window.
 *
 * Implements the §5.3 alignment discipline: data shared through a
 * window must not share its pages with unrelated caller state, so
 * paths and small out-structures are copied into dedicated pages that
 * stay windowed for the whole peer set of the call chain. The arena
 * owns its pages (allocated in the constructing cubicle) and frees
 * them — and destroys the window — on destruction.
 */
class XferArena {
  public:
    XferArena() = default;
    XferArena(core::System &sys, std::size_t pages, const PeerSet &peers,
              bool hot = false);
    ~XferArena();

    XferArena(const XferArena &) = delete;
    XferArena &operator=(const XferArena &) = delete;
    XferArena(XferArena &&other) noexcept { moveFrom(other); }
    XferArena &operator=(XferArena &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    bool valid() const { return range_.valid(); }
    char *base() const { return reinterpret_cast<char *>(range_.ptr); }
    std::size_t size() const { return range_.sizeBytes(); }
    core::Cid owner() const { return win_.owner(); }
    const GrantWindow &window() const { return win_; }

    /** Staging slot at byte offset @p off (bounds-checked). */
    char *at(std::size_t off) const;

    /**
     * Bump-allocates @p bytes aligned to @p align within the arena.
     * Slots persist until rewind(); the arena does not free per-slot.
     */
    void *alloc(std::size_t bytes, std::size_t align = 8);
    /** Drops every slot handed out by alloc(). */
    void rewind() { bump_ = 0; }

    /** Touches [base+off, base+off+n) for write before staging data. */
    void touchForWrite(std::size_t off, std::size_t n);

    /**
     * Forgets pages and window without releasing either — crash
     * teardown only (see GrantWindow::abandon): the monitor already
     * reclaimed the staging pages when the owner was destroyed.
     */
    void abandon() noexcept
    {
        win_.abandon();
        range_ = {};
        sys_ = nullptr;
        bump_ = 0;
    }

  private:
    void moveFrom(XferArena &other) noexcept;
    void reset() noexcept;

    core::System *sys_ = nullptr;
    mem::PageRange range_{};
    GrantWindow win_;
    std::size_t bump_ = 0;
};

} // namespace cubicleos::libos

#endif // CUBICLEOS_LIBOS_GRANT_H_
