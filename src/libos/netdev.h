/**
 * @file
 * The NETDEV cubicle: a virtual network interface, plus the host-side
 * FrameChannel "wire" it attaches to.
 *
 * The paper's NGINX deployment isolates the network device driver in
 * its own cubicle (Fig. 5). Here the device moves IP packets between
 * cubicle memory and a host-side queue pair (the simulated wire, which
 * models per-frame and per-byte latency on the virtual cycle clock).
 */

#ifndef CUBICLEOS_LIBOS_NETDEV_H_
#define CUBICLEOS_LIBOS_NETDEV_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/system.h"

namespace cubicleos::libos {

/** Maximum transfer unit of the simulated wire (IP packet bytes). */
inline constexpr std::size_t kMtu = 1500;

/**
 * A lossless, ordered, bidirectional frame queue: the wire between the
 * cubicle-hosted NETDEV and an external peer (the benchmark client).
 *
 * Latency model: every frame charges a fixed per-frame cost plus a
 * per-byte cost to the attached cycle clock, approximating a 1 Gb/s
 * link with microsecond-scale switching.
 */
class FrameChannel {
  public:
    using Frame = std::vector<uint8_t>;

    /**
     * @param clock clock charged for wire latency; may be null.
     *
     * Defaults model the paper's same-machine measurement setup
     * (siege against NGINX over loopback): ~4 us per frame of
     * kernel/driver handling and ~10 Gb/s of streaming bandwidth.
     */
    explicit FrameChannel(hw::CycleClock *clock = nullptr,
                          uint64_t frame_cycles = 8800, // ~4 us
                          double byte_cycles = 1.76)    // ~10 Gb/s
        : clock_(clock), frameCycles_(frame_cycles),
          byteCycles_(byte_cycles)
    {}

    /** Host/peer side: queue a frame towards the device. */
    void hostSend(Frame frame)
    {
        chargeWire(frame.size());
        toDevice_.push_back(std::move(frame));
    }

    /** Host/peer side: take the next frame the device transmitted. */
    std::optional<Frame> hostRecv()
    {
        if (fromDevice_.empty())
            return std::nullopt;
        Frame f = std::move(fromDevice_.front());
        fromDevice_.pop_front();
        return f;
    }

    /** Device side: transmit a frame to the wire. */
    void devTx(Frame frame)
    {
        chargeWire(frame.size());
        fromDevice_.push_back(std::move(frame));
    }

    /** Device side: receive the next frame from the wire. */
    std::optional<Frame> devRx()
    {
        if (toDevice_.empty())
            return std::nullopt;
        Frame f = std::move(toDevice_.front());
        toDevice_.pop_front();
        return f;
    }

    std::size_t pendingToDevice() const { return toDevice_.size(); }
    std::size_t pendingFromDevice() const { return fromDevice_.size(); }

    uint64_t framesCarried() const { return frames_; }
    uint64_t bytesCarried() const { return bytes_; }

  private:
    void chargeWire(std::size_t len)
    {
        ++frames_;
        bytes_ += len;
        if (clock_) {
            clock_->charge(frameCycles_ +
                           static_cast<uint64_t>(byteCycles_ *
                                                 static_cast<double>(len)));
        }
    }

    hw::CycleClock *clock_;
    uint64_t frameCycles_;
    double byteCycles_;
    std::deque<Frame> toDevice_;
    std::deque<Frame> fromDevice_;
    uint64_t frames_ = 0;
    uint64_t bytes_ = 0;
};

/** The isolated network-device component. */
class NetdevComponent : public core::Component {
  public:
    /** @param wire the channel this device attaches to (not owned). */
    explicit NetdevComponent(FrameChannel *wire) : wire_(wire) {}

    core::ComponentSpec spec() const override
    {
        core::ComponentSpec s;
        s.name = "netdev";
        s.kind = core::CubicleKind::kIsolated;
        return s;
    }

    void registerExports(core::Exporter &exp) override;

    uint64_t txCount() const { return tx_; }
    uint64_t rxCount() const { return rx_; }

  private:
    FrameChannel *wire_;
    uint64_t tx_ = 0;
    uint64_t rx_ = 0;
};

} // namespace cubicleos::libos

#endif // CUBICLEOS_LIBOS_NETDEV_H_
