#include "libos/sockapi.h"

namespace cubicleos::libos {

CubicleSockApi::CubicleSockApi(core::System &sys)
    : sys_(sys),
      lwipCid_(sys.cidOf("lwip")),
      lwipPeer_{lwipCid_},
      window_(sys, lwipPeer_),
      ring_(sys, lwipCid_),
      socket_(sys.resolve<int()>("lwip", "lwip_socket")),
      bind_(sys.resolve<int(int, uint16_t)>("lwip", "lwip_bind")),
      listen_(sys.resolve<int(int, int)>("lwip", "lwip_listen")),
      accept_(sys.resolve<int(int)>("lwip", "lwip_accept")),
      connect_(sys.resolve<int(int, uint32_t, uint16_t)>("lwip",
                                                         "lwip_connect")),
      send_(sys.resolve<int64_t(int, const void *, std::size_t)>(
          "lwip", "lwip_send")),
      recv_(sys.resolve<int64_t(int, void *, std::size_t)>("lwip",
                                                           "lwip_recv")),
      close_(sys.resolve<int(int)>("lwip", "lwip_close")),
      established_(sys.resolve<int(int)>("lwip", "lwip_established")),
      sendDrained_(sys.resolve<int(int)>("lwip", "lwip_send_drained")),
      poll_(sys.resolve<int64_t(uint64_t)>("lwip", "lwip_poll")),
      sendz_(sys.resolve<int64_t(int, const void *, std::size_t)>(
          "lwip", "lwip_sendz")),
      zcDone_(sys.resolve<int64_t(int)>("lwip", "lwip_zc_done"))
{
}

int64_t
CubicleSockApi::send(int fd, const void *buf, std::size_t n)
{
    // The Grant un-stages, closes and reclaims on every exit path —
    // including an exception thrown by the resolved callee (the old
    // inline add/open…remove/closeAll sequence leaked an open window
    // whenever the callee threw). LWIP always copies the buffer into
    // its send queue, so declare the read up front: the prestage retag
    // replaces the guaranteed first-touch fault.
    return guarded<int64_t>([&] {
        Grant grant(sys_, window_, lwipPeer_, buf, n, hw::Access::kRead,
                    Prestage::kRead);
        return send_(fd, buf, n);
    });
}

int64_t
CubicleSockApi::recv(int fd, void *buf, std::size_t n)
{
    // LWIP writes received bytes into the buffer (when data is
    // pending); declare the write so the delivery path never faults.
    return guarded<int64_t>([&] {
        Grant grant(sys_, window_, lwipPeer_, buf, n, hw::Access::kRead,
                    Prestage::kWrite);
        return recv_(fd, buf, n);
    });
}

int64_t
CubicleSockApi::poll(uint64_t now_ns)
{
    // Push-then-flush: a poll becomes the tail of whatever batch is
    // already queued, so callers that submitted zero-copy work earlier
    // in the round get it executed under this poll's switch.
    int64_t r = 0;
    enqueue([this, now_ns, &r] { r = poll_(now_ns); }, &r);
    ring_.flush();
    return r;
}

int64_t
CubicleSockApi::sendZero(int fd, const void *span, std::size_t n)
{
    // No window work: the span is backend memory already granted to
    // LWIP by the borrow that produced it.
    int64_t r = 0;
    enqueue([this, fd, span, n, &r] { r = sendz_(fd, span, n); }, &r);
    ring_.flush();
    return r;
}

int64_t
CubicleSockApi::zeroCopyDone(int fd)
{
    int64_t r = 0;
    enqueue([this, fd, &r] { r = zcDone_(fd); }, &r);
    ring_.flush();
    return r;
}

void
CubicleSockApi::submitSendZero(int fd, const void *span, std::size_t n,
                               int64_t *out)
{
    enqueue([this, fd, span, n, out] { *out = sendz_(fd, span, n); },
            out);
}

void
CubicleSockApi::submitZeroCopyDone(int fd, int64_t *out)
{
    enqueue([this, fd, out] { *out = zcDone_(fd); }, out);
}

void
CubicleSockApi::submitPoll(uint64_t now_ns, int64_t *out)
{
    enqueue([this, now_ns, out] { *out = poll_(now_ns); }, out);
}

} // namespace cubicleos::libos
