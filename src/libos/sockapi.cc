#include "libos/sockapi.h"

namespace cubicleos::libos {

CubicleSockApi::CubicleSockApi(core::System &sys)
    : sys_(sys),
      lwipCid_(sys.cidOf("lwip")),
      socket_(sys.resolve<int()>("lwip", "lwip_socket")),
      bind_(sys.resolve<int(int, uint16_t)>("lwip", "lwip_bind")),
      listen_(sys.resolve<int(int, int)>("lwip", "lwip_listen")),
      accept_(sys.resolve<int(int)>("lwip", "lwip_accept")),
      connect_(sys.resolve<int(int, uint32_t, uint16_t)>("lwip",
                                                         "lwip_connect")),
      send_(sys.resolve<int64_t(int, const void *, std::size_t)>(
          "lwip", "lwip_send")),
      recv_(sys.resolve<int64_t(int, void *, std::size_t)>("lwip",
                                                           "lwip_recv")),
      close_(sys.resolve<int(int)>("lwip", "lwip_close")),
      established_(sys.resolve<int(int)>("lwip", "lwip_established")),
      sendDrained_(sys.resolve<int(int)>("lwip", "lwip_send_drained")),
      poll_(sys.resolve<int64_t(uint64_t)>("lwip", "lwip_poll"))
{
    window_ = sys_.windowInit();
}

CubicleSockApi::~CubicleSockApi()
{
    try {
        sys_.windowDestroy(window_);
    } catch (const core::WindowError &) {
        // Destroyed from outside the owning cubicle during teardown.
    }
}

int64_t
CubicleSockApi::send(int fd, const void *buf, std::size_t n)
{
    sys_.windowAdd(window_, buf, n);
    sys_.windowOpen(window_, lwipCid_);
    const int64_t rc = send_(fd, buf, n);
    sys_.windowRemove(window_, buf);
    sys_.windowCloseAll(window_);
    sys_.touch(buf, n, hw::Access::kRead); // reclaim (next app access)
    return rc;
}

int64_t
CubicleSockApi::recv(int fd, void *buf, std::size_t n)
{
    sys_.windowAdd(window_, buf, n);
    sys_.windowOpen(window_, lwipCid_);
    const int64_t rc = recv_(fd, buf, n);
    sys_.windowRemove(window_, buf);
    sys_.windowCloseAll(window_);
    sys_.touch(buf, n, hw::Access::kRead);
    return rc;
}

} // namespace cubicleos::libos
