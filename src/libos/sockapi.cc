#include "libos/sockapi.h"

namespace cubicleos::libos {

CubicleSockApi::CubicleSockApi(core::System &sys)
    : sys_(sys),
      lwipCid_(sys.cidOf("lwip")),
      lwipPeer_{lwipCid_},
      window_(sys, lwipPeer_),
      socket_(sys.resolve<int()>("lwip", "lwip_socket")),
      bind_(sys.resolve<int(int, uint16_t)>("lwip", "lwip_bind")),
      listen_(sys.resolve<int(int, int)>("lwip", "lwip_listen")),
      accept_(sys.resolve<int(int)>("lwip", "lwip_accept")),
      connect_(sys.resolve<int(int, uint32_t, uint16_t)>("lwip",
                                                         "lwip_connect")),
      send_(sys.resolve<int64_t(int, const void *, std::size_t)>(
          "lwip", "lwip_send")),
      recv_(sys.resolve<int64_t(int, void *, std::size_t)>("lwip",
                                                           "lwip_recv")),
      close_(sys.resolve<int(int)>("lwip", "lwip_close")),
      established_(sys.resolve<int(int)>("lwip", "lwip_established")),
      sendDrained_(sys.resolve<int(int)>("lwip", "lwip_send_drained")),
      poll_(sys.resolve<int64_t(uint64_t)>("lwip", "lwip_poll")),
      sendz_(sys.resolve<int64_t(int, const void *, std::size_t)>(
          "lwip", "lwip_sendz")),
      zcDone_(sys.resolve<int64_t(int)>("lwip", "lwip_zc_done"))
{
}

int64_t
CubicleSockApi::send(int fd, const void *buf, std::size_t n)
{
    // The Grant un-stages, closes and reclaims on every exit path —
    // including an exception thrown by the resolved callee (the old
    // inline add/open…remove/closeAll sequence leaked an open window
    // whenever the callee threw).
    Grant grant(sys_, window_, lwipPeer_, buf, n, hw::Access::kRead);
    return send_(fd, buf, n);
}

int64_t
CubicleSockApi::recv(int fd, void *buf, std::size_t n)
{
    Grant grant(sys_, window_, lwipPeer_, buf, n, hw::Access::kRead);
    return recv_(fd, buf, n);
}

int64_t
CubicleSockApi::sendZero(int fd, const void *span, std::size_t n)
{
    // No window work: the span is backend memory already granted to
    // LWIP by the borrow that produced it.
    return sendz_(fd, span, n);
}

} // namespace cubicleos::libos
