#include "libos/tcpip.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <utility>

namespace cubicleos::libos {

namespace {

// --- wire formats -----------------------------------------------------

struct IpHeader {
    uint8_t verIhl;
    uint8_t tos;
    uint16_t totalLen;
    uint16_t id;
    uint16_t fragOff;
    uint8_t ttl;
    uint8_t proto;
    uint16_t checksum;
    uint32_t src;
    uint32_t dst;
} __attribute__((packed));

struct TcpHeader {
    uint16_t srcPort;
    uint16_t dstPort;
    uint32_t seq;
    uint32_t ack;
    uint8_t dataOff; ///< upper nibble: header words
    uint8_t flags;
    uint16_t window;
    uint16_t checksum;
    uint16_t urgent;
} __attribute__((packed));

enum TcpFlags : uint8_t {
    kFin = 0x01,
    kSyn = 0x02,
    kRst = 0x04,
    kPsh = 0x08,
    kAck = 0x10,
};

constexpr std::size_t kIpHdr = sizeof(IpHeader);
constexpr std::size_t kTcpHdr = sizeof(TcpHeader);

uint16_t
hton16(uint16_t v)
{
    return static_cast<uint16_t>((v << 8) | (v >> 8));
}
uint32_t
hton32(uint32_t v)
{
    return (v << 24) | ((v & 0xFF00) << 8) | ((v >> 8) & 0xFF00) |
           (v >> 24);
}

/** Internet checksum over @p len bytes plus an initial partial sum. */
uint16_t
inetChecksum(const uint8_t *data, std::size_t len, uint64_t sum = 0)
{
    for (std::size_t i = 0; i + 1 < len; i += 2)
        sum += (static_cast<uint32_t>(data[i]) << 8) | data[i + 1];
    if (len & 1)
        sum += static_cast<uint32_t>(data[len - 1]) << 8;
    while (sum >> 16)
        sum = (sum & 0xFFFF) + (sum >> 16);
    return static_cast<uint16_t>(~sum & 0xFFFF);
}

/** TCP pseudo-header partial sum. */
uint64_t
pseudoSum(uint32_t src, uint32_t dst, std::size_t tcp_len)
{
    uint64_t sum = 0;
    sum += (src >> 16) + (src & 0xFFFF);
    sum += (dst >> 16) + (dst & 0xFFFF);
    sum += 6; // protocol TCP
    sum += static_cast<uint64_t>(tcp_len);
    return sum;
}

/** Signed sequence-number comparison (RFC 793 arithmetic). */
bool
seqLt(uint32_t a, uint32_t b)
{
    return static_cast<int32_t>(a - b) < 0;
}

} // namespace

// --- connection state ---------------------------------------------------

/**
 * One send-queue element: either bytes the stack owns (copied from the
 * caller at send() time) or a reference to an external zero-copy span
 * whose storage the caller keeps alive — and granted — until the last
 * byte is acknowledged (retransmissions re-read it in place).
 */
struct SendChunk {
    std::vector<uint8_t> owned; ///< empty for zero-copy chunks
    const uint8_t *ext = nullptr;
    std::size_t len = 0;    ///< logical chunk length
    std::size_t popped = 0; ///< acknowledged bytes consumed from front

    bool zc() const { return ext != nullptr; }
    const uint8_t *bytes() const { return zc() ? ext : owned.data(); }
    std::size_t remaining() const { return len - popped; }
};

struct TcpIpStack::Conn {
    enum State {
        kClosed,
        kListen,
        kSynSent,
        kSynRcvd,
        kEstablished,
        kFinWait1,
        kFinWait2,
        kCloseWait,
        kLastAck,
        kClosing,
    };

    State state = kClosed;
    bool used = false;
    bool appClosed = false; ///< app called close(); free slot at kClosed
    bool refused = false;   ///< connect() got RST

    uint16_t localPort = 0;
    uint32_t remoteIp = 0;
    uint16_t remotePort = 0;

    // Send side: the chunk queue holds [sndUna, sndUna + sndQBytes).
    uint32_t sndUna = 0;
    uint32_t sndNxt = 0;
    std::deque<SendChunk> sndQ;
    std::size_t sndQBytes = 0; ///< total remaining bytes across chunks
    uint64_t zcCompleted = 0;  ///< fully-acked spans not yet reported
    bool synOut = false; ///< SYN/SYN-ACK emitted (awaiting ack)
    bool finQueued = false;
    bool finSent = false;
    uint32_t finSeq = 0;
    uint32_t peerWnd = 65535;

    // Receive side.
    uint32_t rcvNxt = 0;
    std::deque<uint8_t> rcvQ;
    bool finRcvd = false;
    bool ackPending = false;

    // Listener state.
    int backlog = 0;
    std::deque<int> acceptQ;

    uint64_t lastSendNs = 0;

    /** Sequence space in flight (data + unacked SYN/FIN). */
    std::size_t inflight() const { return sndNxt - sndUna; }

    /** Payload bytes in flight (excludes the FIN's sequence slot). */
    std::size_t dataInflight() const
    {
        std::size_t fl = sndNxt - sndUna;
        if (finSent && !seqLt(finSeq, sndUna))
            fl -= 1; // FIN emitted but not yet acknowledged
        return fl;
    }

    std::size_t unsent() const { return sndQBytes - dataInflight(); }

    /**
     * Locates the byte at logical offset @p off into the un-popped
     * queue contents. @return the chunk and the index within its
     * bytes() (popped bytes included), or {nullptr, 0} past the end.
     */
    std::pair<const SendChunk *, std::size_t> chunkAt(std::size_t off) const
    {
        for (const SendChunk &ck : sndQ) {
            if (off < ck.remaining())
                return {&ck, ck.popped + off};
            off -= ck.remaining();
        }
        return {nullptr, 0};
    }
};

struct TcpIpStack::Impl {
    std::vector<std::unique_ptr<Conn>> conns;
    uint16_t nextEphemeral = 49152;
    uint32_t nextIss = 1000;
    uint64_t nowNs = 0;
    /** RSTs owed to peers with no matching connection. */
    std::vector<std::vector<uint8_t>> pendingRst;
};

TcpIpStack::TcpIpStack(const TcpConfig &cfg)
    : impl_(std::make_unique<Impl>()), cfg_(cfg)
{
}

TcpIpStack::~TcpIpStack() = default;

// --- fd helpers -----------------------------------------------------

int
TcpIpStack::socket()
{
    for (std::size_t fd = 0; fd < impl_->conns.size(); ++fd) {
        if (!impl_->conns[fd]->used) {
            *impl_->conns[fd] = Conn{};
            impl_->conns[fd]->used = true;
            return static_cast<int>(fd);
        }
    }
    impl_->conns.push_back(std::make_unique<Conn>());
    impl_->conns.back()->used = true;
    return static_cast<int>(impl_->conns.size() - 1);
}

TcpIpStack::Conn *
TcpIpStack::conn(int fd) const
{
    auto &conns = impl_->conns;
    if (fd < 0 || static_cast<std::size_t>(fd) >= conns.size() ||
        !conns[static_cast<std::size_t>(fd)]->used) {
        return nullptr;
    }
    return conns[static_cast<std::size_t>(fd)].get();
}

int
TcpIpStack::bind(int fd, uint16_t port)
{
    Conn *c = conn(fd);
    if (!c)
        return kNetBadFd;
    for (const auto &other : impl_->conns) {
        if (other->used && other.get() != c &&
            other->state == Conn::kListen && other->localPort == port) {
            return kNetInUse;
        }
    }
    c->localPort = port;
    return kNetOk;
}

int
TcpIpStack::listen(int fd, int backlog)
{
    Conn *c = conn(fd);
    if (!c || c->localPort == 0)
        return kNetBadFd;
    c->state = Conn::kListen;
    c->backlog = backlog > 0 ? backlog : 8;
    return kNetOk;
}

int
TcpIpStack::accept(int fd)
{
    Conn *c = conn(fd);
    if (!c || c->state != Conn::kListen)
        return kNetBadFd;
    // Hand out only fully established children.
    while (!c->acceptQ.empty()) {
        const int child = c->acceptQ.front();
        Conn *cc = conn(child);
        if (cc && cc->state == Conn::kEstablished) {
            c->acceptQ.pop_front();
            return child;
        }
        if (!cc || cc->state == Conn::kClosed) {
            c->acceptQ.pop_front();
            continue;
        }
        break; // head still in handshake
    }
    return kNetAgain;
}

int
TcpIpStack::connect(int fd, uint32_t dst_ip, uint16_t dst_port)
{
    Conn *c = conn(fd);
    if (!c)
        return kNetBadFd;
    if (c->state != Conn::kClosed)
        return kNetInUse;
    if (c->localPort == 0)
        c->localPort = impl_->nextEphemeral++;
    c->remoteIp = dst_ip;
    c->remotePort = dst_port;
    c->sndUna = c->sndNxt = impl_->nextIss;
    impl_->nextIss += 0x10000;
    c->state = Conn::kSynSent;
    c->synOut = false;
    return kNetOk;
}

int64_t
TcpIpStack::send(int fd, const void *buf, std::size_t n)
{
    Conn *c = conn(fd);
    if (!c)
        return kNetBadFd;
    if (c->state != Conn::kEstablished && c->state != Conn::kCloseWait)
        return kNetNotConn;
    if (c->finQueued)
        return kNetNotConn;
    const std::size_t room =
        cfg_.sndBuf > c->sndQBytes ? cfg_.sndBuf - c->sndQBytes : 0;
    const std::size_t take = std::min(n, room);
    if (take == 0)
        return kNetAgain;
    const auto *bytes = static_cast<const uint8_t *>(buf);
    SendChunk ck;
    ck.owned.assign(bytes, bytes + take);
    ck.len = take;
    c->sndQ.push_back(std::move(ck));
    c->sndQBytes += take;
    countCopy(take); // app buffer → send queue
    return static_cast<int64_t>(take);
}

int64_t
TcpIpStack::sendZero(int fd, const void *span, std::size_t n)
{
    Conn *c = conn(fd);
    if (!c)
        return kNetBadFd;
    if (c->state != Conn::kEstablished && c->state != Conn::kCloseWait)
        return kNetNotConn;
    if (c->finQueued)
        return kNetNotConn;
    if (n == 0)
        return 0;
    // All-or-nothing: a partially queued span would leave the caller
    // unable to tell which suffix to resubmit without copying.
    const std::size_t room =
        cfg_.sndBuf > c->sndQBytes ? cfg_.sndBuf - c->sndQBytes : 0;
    if (room < n)
        return kNetAgain;
    SendChunk ck;
    ck.ext = static_cast<const uint8_t *>(span);
    ck.len = n;
    c->sndQ.push_back(std::move(ck));
    c->sndQBytes += n;
    return static_cast<int64_t>(n);
}

int64_t
TcpIpStack::zeroCopyDone(int fd)
{
    Conn *c = conn(fd);
    if (!c)
        return kNetBadFd;
    const int64_t done = static_cast<int64_t>(c->zcCompleted);
    c->zcCompleted = 0;
    return done;
}

void
TcpIpStack::countCopy(std::size_t bytes)
{
    ++stats_.payloadCopies;
    stats_.payloadCopyBytes += bytes;
    if (copyHook_)
        copyHook_(bytes);
}

int64_t
TcpIpStack::recv(int fd, void *buf, std::size_t n)
{
    Conn *c = conn(fd);
    if (!c)
        return kNetBadFd;
    if (c->refused)
        return kNetRefused;
    if (c->rcvQ.empty()) {
        if (c->finRcvd)
            return 0; // orderly close
        if (c->state == Conn::kClosed)
            return kNetNotConn;
        return kNetAgain;
    }
    const std::size_t take = std::min(n, c->rcvQ.size());
    auto *out = static_cast<uint8_t *>(buf);
    for (std::size_t i = 0; i < take; ++i) {
        out[i] = c->rcvQ.front();
        c->rcvQ.pop_front();
    }
    // The window opened: let the peer know promptly.
    c->ackPending = true;
    return static_cast<int64_t>(take);
}

int
TcpIpStack::close(int fd)
{
    Conn *c = conn(fd);
    if (!c)
        return kNetBadFd;
    c->appClosed = true;
    switch (c->state) {
      case Conn::kClosed:
      case Conn::kListen:
      case Conn::kSynSent:
        c->used = false;
        c->state = Conn::kClosed;
        break;
      case Conn::kSynRcvd:
      case Conn::kEstablished:
        c->finQueued = true;
        c->state = Conn::kFinWait1;
        break;
      case Conn::kCloseWait:
        c->finQueued = true;
        c->state = Conn::kLastAck;
        break;
      default:
        break;
    }
    return kNetOk;
}

bool
TcpIpStack::isEstablished(int fd) const
{
    const Conn *c = conn(fd);
    return c && (c->state == Conn::kEstablished ||
                 c->state == Conn::kCloseWait || !c->rcvQ.empty());
}

bool
TcpIpStack::sendDrained(int fd) const
{
    const Conn *c = conn(fd);
    return c && c->sndQBytes == 0;
}

// --- segment emission -----------------------------------------------

namespace {

std::vector<uint8_t>
buildSegment(uint32_t src_ip, uint32_t dst_ip, uint16_t src_port,
             uint16_t dst_port, uint32_t seq, uint32_t ack,
             uint8_t flags, uint16_t window, const uint8_t *payload,
             std::size_t len)
{
    std::vector<uint8_t> pkt(kIpHdr + kTcpHdr + len);
    auto *ip = reinterpret_cast<IpHeader *>(pkt.data());
    ip->verIhl = 0x45;
    ip->tos = 0;
    ip->totalLen = hton16(static_cast<uint16_t>(pkt.size()));
    ip->id = 0;
    ip->fragOff = 0;
    ip->ttl = 64;
    ip->proto = 6;
    ip->checksum = 0;
    ip->src = hton32(src_ip);
    ip->dst = hton32(dst_ip);
    ip->checksum = hton16(inetChecksum(pkt.data(), kIpHdr));

    auto *tcp = reinterpret_cast<TcpHeader *>(pkt.data() + kIpHdr);
    tcp->srcPort = hton16(src_port);
    tcp->dstPort = hton16(dst_port);
    tcp->seq = hton32(seq);
    tcp->ack = hton32(ack);
    tcp->dataOff = 5 << 4;
    tcp->flags = flags;
    tcp->window = hton16(window);
    tcp->checksum = 0;
    tcp->urgent = 0;
    if (len > 0)
        std::memcpy(pkt.data() + kIpHdr + kTcpHdr, payload, len);
    tcp->checksum = hton16(
        inetChecksum(pkt.data() + kIpHdr, kTcpHdr + len,
                     pseudoSum(src_ip, dst_ip, kTcpHdr + len)));
    return pkt;
}

} // namespace

void
TcpIpStack::pollOutput(
    const std::function<void(const uint8_t *, std::size_t)> &tx)
{
    // Owed RSTs first.
    for (auto &rst : impl_->pendingRst) {
        ++stats_.segsOut;
        tx(rst.data(), rst.size());
    }
    impl_->pendingRst.clear();

    for (std::size_t fd = 0; fd < impl_->conns.size(); ++fd) {
        Conn &c = *impl_->conns[fd];
        if (!c.used || c.state == Conn::kClosed ||
            c.state == Conn::kListen) {
            continue;
        }
        const uint16_t wnd = static_cast<uint16_t>(std::min<std::size_t>(
            cfg_.rcvBuf > c.rcvQ.size() ? cfg_.rcvBuf - c.rcvQ.size() : 0,
            65535));
        auto emit = [&](uint32_t seq, uint8_t flags,
                        const uint8_t *payload, std::size_t len) {
            auto pkt = buildSegment(cfg_.ipAddr, c.remoteIp, c.localPort,
                                    c.remotePort, seq, c.rcvNxt, flags,
                                    wnd, payload, len);
            ++stats_.segsOut;
            stats_.bytesOut += len;
            c.lastSendNs = impl_->nowNs;
            c.ackPending = false;
            tx(pkt.data(), pkt.size());
        };

        // Handshake segments.
        if (c.state == Conn::kSynSent && !c.synOut) {
            emit(c.sndNxt, kSyn, nullptr, 0);
            c.sndNxt = c.sndUna + 1; // SYN consumes one sequence number
            c.synOut = true;
            continue;
        }
        if (c.state == Conn::kSynRcvd && !c.synOut) {
            emit(c.sndUna, kSyn | kAck, nullptr, 0);
            c.sndNxt = c.sndUna + 1;
            c.synOut = true;
            continue;
        }
        if (c.state == Conn::kSynSent || c.state == Conn::kSynRcvd)
            continue; // awaiting handshake completion

        // Data segments, limited by the peer's advertised window.
        while (!c.finSent && c.unsent() > 0 && c.inflight() < c.peerWnd) {
            const std::size_t off = c.dataInflight();
            std::size_t len =
                std::min({static_cast<std::size_t>(cfg_.mss),
                          c.unsent(),
                          static_cast<std::size_t>(c.peerWnd) -
                              c.inflight()});
            const auto [ck, idx] = c.chunkAt(off);
            assert(ck != nullptr);
            if (ck->zc()) {
                // Zero-copy chunk: build the segment straight from the
                // borrowed span (the scatter-gather DMA analogue — the
                // header-assembly memcpy inside buildSegment is what a
                // NIC gather descriptor would do, not a payload copy).
                // Truncate at the chunk boundary so a span never
                // shares a segment with foreign bytes.
                len = std::min(len, ck->len - idx);
                emit(c.sndNxt, kAck | kPsh, ck->bytes() + idx, len);
                ++stats_.zcSegsOut;
                stats_.zcBytesOut += len;
            } else {
                // Gather across consecutive owned chunks into one
                // staging buffer, preserving the seed's MSS-sized
                // segmentation; stop at a zero-copy chunk boundary.
                std::vector<uint8_t> payload;
                payload.reserve(len);
                std::size_t gather_off = off;
                while (payload.size() < len) {
                    const auto [gck, gidx] = c.chunkAt(gather_off);
                    if (!gck || gck->zc())
                        break;
                    const std::size_t take = std::min(
                        len - payload.size(), gck->len - gidx);
                    payload.insert(payload.end(), gck->bytes() + gidx,
                                   gck->bytes() + gidx + take);
                    gather_off += take;
                }
                len = payload.size();
                countCopy(len); // send queue → segment staging
                emit(c.sndNxt, kAck | kPsh, payload.data(), len);
            }
            c.sndNxt += static_cast<uint32_t>(len);
        }

        // FIN once every byte is out.
        if (c.finQueued && !c.finSent && c.unsent() == 0) {
            c.finSeq = c.sndNxt;
            emit(c.sndNxt, kFin | kAck, nullptr, 0);
            c.sndNxt += 1;
            c.finSent = true;
            continue;
        }

        if (c.ackPending)
            emit(c.sndNxt, kAck, nullptr, 0);
    }
}

// --- input processing -------------------------------------------------

void
TcpIpStack::input(const uint8_t *pkt, std::size_t len)
{
    if (len < kIpHdr + kTcpHdr)
        return;
    const auto *ip = reinterpret_cast<const IpHeader *>(pkt);
    if ((ip->verIhl >> 4) != 4 || ip->proto != 6)
        return;
    if (hton32(ip->dst) != cfg_.ipAddr)
        return; // not ours
    if (inetChecksum(pkt, kIpHdr) != 0)
        return;

    const uint32_t src_ip = hton32(ip->src);
    const std::size_t total = hton16(ip->totalLen);
    if (total > len)
        return;
    const auto *tcp = reinterpret_cast<const TcpHeader *>(pkt + kIpHdr);
    const std::size_t tcp_len = total - kIpHdr;
    if (inetChecksum(pkt + kIpHdr, tcp_len,
                     pseudoSum(src_ip, cfg_.ipAddr, tcp_len)) != 0) {
        ++stats_.checksumDrops;
        return;
    }

    const uint16_t src_port = hton16(tcp->srcPort);
    const uint16_t dst_port = hton16(tcp->dstPort);
    const uint32_t seq = hton32(tcp->seq);
    const uint32_t ack = hton32(tcp->ack);
    const uint8_t flags = tcp->flags;
    const uint16_t wnd = hton16(tcp->window);
    const std::size_t hdr = (tcp->dataOff >> 4) * 4u;
    const uint8_t *payload = pkt + kIpHdr + hdr;
    const std::size_t plen = tcp_len - hdr;

    ++stats_.segsIn;

    // Demux: exact four-tuple first, then listener.
    Conn *c = nullptr;
    Conn *listener = nullptr;
    for (auto &cp : impl_->conns) {
        if (!cp->used)
            continue;
        if (cp->state == Conn::kListen && cp->localPort == dst_port)
            listener = cp.get();
        else if (cp->localPort == dst_port && cp->remoteIp == src_ip &&
                 cp->remotePort == src_port && cp->state != Conn::kClosed)
            c = cp.get();
    }

    if (!c && listener && (flags & kSyn) && !(flags & kAck)) {
        // Passive open.
        if (static_cast<int>(listener->acceptQ.size()) >=
            listener->backlog) {
            return; // silently drop; peer will retransmit
        }
        const int child_fd = socket();
        Conn &cc = *impl_->conns[static_cast<std::size_t>(child_fd)];
        cc.localPort = dst_port;
        cc.remoteIp = src_ip;
        cc.remotePort = src_port;
        cc.rcvNxt = seq + 1;
        cc.sndUna = cc.sndNxt = impl_->nextIss;
        impl_->nextIss += 0x10000;
        cc.peerWnd = wnd;
        cc.state = Conn::kSynRcvd;
        listener->acceptQ.push_back(child_fd);
        return;
    }
    if (!c) {
        if (!(flags & kRst)) {
            // No matching endpoint: owe the peer a RST.
            impl_->pendingRst.push_back(buildSegment(
                cfg_.ipAddr, src_ip, dst_port, src_port, ack, seq + 1,
                kRst | kAck, 0, nullptr, 0));
        }
        return;
    }

    if (flags & kRst) {
        c->refused = c->state == Conn::kSynSent;
        c->state = Conn::kClosed;
        if (c->appClosed)
            c->used = false;
        return;
    }

    c->peerWnd = wnd;

    // Handshake progress.
    if (c->state == Conn::kSynSent && (flags & kSyn) && (flags & kAck)) {
        if (ack == c->sndNxt) {
            c->sndUna = ack;
            c->rcvNxt = seq + 1;
            c->state = Conn::kEstablished;
            c->ackPending = true;
        }
        return;
    }
    if (c->state == Conn::kSynRcvd && (flags & kAck) &&
        ack == c->sndNxt) {
        c->sndUna = ack;
        c->state = Conn::kEstablished;
        // fall through: the ACK may carry data
    }

    // ACK processing.
    if (flags & kAck) {
        uint32_t acked_upper = c->sndNxt;
        if (seqLt(c->sndUna, ack) && !seqLt(acked_upper, ack - 0)) {
            uint32_t advance = ack - c->sndUna;
            // FIN consumes a sequence number but is not in sndQ.
            uint32_t data_advance = advance;
            if (c->finSent && !seqLt(ack, c->finSeq + 1))
                data_advance = advance - 1;
            std::size_t to_pop = data_advance;
            while (to_pop > 0 && !c->sndQ.empty()) {
                SendChunk &ck = c->sndQ.front();
                const std::size_t take =
                    std::min(to_pop, ck.remaining());
                ck.popped += take;
                c->sndQBytes -= take;
                to_pop -= take;
                if (ck.remaining() == 0) {
                    // A fully-acked span completes, in FIFO order —
                    // the borrower may now release it.
                    if (ck.zc())
                        ++c->zcCompleted;
                    c->sndQ.pop_front();
                }
            }
            c->sndUna = ack;
            // Our FIN acknowledged?
            if (c->finSent && !seqLt(ack, c->finSeq + 1)) {
                if (c->state == Conn::kFinWait1)
                    c->state = Conn::kFinWait2;
                else if (c->state == Conn::kLastAck ||
                         c->state == Conn::kClosing) {
                    c->state = Conn::kClosed;
                    if (c->appClosed)
                        c->used = false;
                }
            }
        }
    }

    // In-order payload.
    if (plen > 0) {
        if (seq == c->rcvNxt &&
            c->rcvQ.size() + plen <= cfg_.rcvBuf) {
            c->rcvQ.insert(c->rcvQ.end(), payload, payload + plen);
            c->rcvNxt += static_cast<uint32_t>(plen);
            stats_.bytesIn += plen;
        }
        c->ackPending = true; // ack (or dup-ack) either way
    }

    // Peer FIN.
    if (flags & kFin) {
        const uint32_t fin_seq = seq + static_cast<uint32_t>(plen);
        if (fin_seq == c->rcvNxt && !c->finRcvd) {
            c->rcvNxt += 1;
            c->finRcvd = true;
            c->ackPending = true;
            switch (c->state) {
              case Conn::kEstablished:
                c->state = Conn::kCloseWait;
                break;
              case Conn::kFinWait1:
                c->state = Conn::kClosing;
                break;
              case Conn::kFinWait2:
                c->state = Conn::kClosed;
                if (c->appClosed)
                    c->used = false;
                break;
              default:
                break;
            }
        }
    }
}

void
TcpIpStack::tick(uint64_t now_ns)
{
    impl_->nowNs = now_ns;
    for (auto &cp : impl_->conns) {
        Conn &c = *cp;
        if (!c.used)
            continue;
        const bool awaiting =
            c.inflight() > 0 ||
            ((c.state == Conn::kSynSent || c.state == Conn::kSynRcvd) &&
             c.synOut) ||
            (c.finSent && c.state != Conn::kClosed &&
             c.state != Conn::kFinWait2);
        if (awaiting && now_ns > c.lastSendNs &&
            now_ns - c.lastSendNs > cfg_.rtoNs) {
            // Go-back-N: rewind and let pollOutput resend.
            ++stats_.retransmits;
            c.sndNxt = c.sndUna;
            if (c.state == Conn::kSynSent || c.state == Conn::kSynRcvd)
                c.synOut = false;
            if (c.finSent) {
                c.finSent = false;
            }
            c.lastSendNs = now_ns;
        }
    }
}

} // namespace cubicleos::libos
