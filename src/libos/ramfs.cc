#include "libos/ramfs.h"

#include <cstring>

namespace cubicleos::libos {

void
RamfsComponent::init()
{
    libc_ = Libc(*sys());
    allocPages_ = sys()->resolve<void *(core::Cid, std::size_t)>(
        "alloc", "alloc_pages");
    freePages_ =
        sys()->resolve<void(void *, std::size_t)>("alloc", "free_pages");

    nodes_.clear();
    Node root;
    root.mode = kModeDir;
    root.live = true;
    nodes_.push_back(std::move(root));
}

RamfsComponent::Node *
RamfsComponent::nodeAt(NodeId id)
{
    if (id >= nodes_.size() || !nodes_[id].live)
        return nullptr;
    return &nodes_[id];
}

bool
RamfsComponent::readPath(const char *path, std::string *out)
{
    if (!path)
        return false;
    const std::size_t n = libc_.strnlen(path, kMaxPath);
    if (n == 0 || n >= kMaxPath)
        return false;
    // strnlen's checked reads retagged the pages; a plain copy is now
    // safe under the simulated MPK.
    out->assign(path, n);
    return out->front() == '/';
}

NodeId
RamfsComponent::childOf(NodeId dir, const std::string &name)
{
    Node *d = nodeAt(dir);
    if (!d || !(d->mode & kModeDir))
        return kNoNode;
    auto it = d->children.find(name);
    return it == d->children.end() ? kNoNode : it->second;
}

int
RamfsComponent::walkParent(const std::string &path, NodeId *parent,
                           std::string *leaf)
{
    NodeId cur = 0; // root
    std::size_t pos = 1;
    std::string last;
    while (pos < path.size()) {
        std::size_t slash = path.find('/', pos);
        if (slash == std::string::npos)
            slash = path.size();
        const std::string part = path.substr(pos, slash - pos);
        pos = slash + 1;
        if (part.empty())
            continue;
        if (!last.empty()) {
            cur = childOf(cur, last);
            if (cur == kNoNode)
                return kErrNoEnt;
            if (!(nodes_[cur].mode & kModeDir))
                return kErrNotDir;
        }
        last = part;
    }
    if (last.empty())
        return kErrInval; // root itself has no parent entry
    *parent = cur;
    *leaf = last;
    return kOk;
}

NodeId
RamfsComponent::doLookup(const char *path)
{
    std::string p;
    if (!readPath(path, &p))
        return kNoNode;
    if (p == "/")
        return 0;
    NodeId parent;
    std::string leaf;
    if (walkParent(p, &parent, &leaf) != kOk)
        return kNoNode;
    return childOf(parent, leaf);
}

NodeId
RamfsComponent::doCreate(const char *path, uint32_t mode)
{
    std::string p;
    if (!readPath(path, &p))
        return kNoNode;
    NodeId parent;
    std::string leaf;
    if (walkParent(p, &parent, &leaf) != kOk)
        return kNoNode;
    Node *dir = nodeAt(parent);
    if (!dir || !(dir->mode & kModeDir))
        return kNoNode;
    if (dir->children.count(leaf))
        return kNoNode; // exists
    if (leaf.size() >= sizeof(VfsDirent{}.name))
        return kNoNode;

    // Reuse a dead slot if possible.
    NodeId id = nodes_.size();
    for (NodeId i = 0; i < nodes_.size(); ++i) {
        if (!nodes_[i].live) {
            id = i;
            break;
        }
    }
    Node fresh;
    fresh.mode = mode ? mode : kModeFile;
    fresh.live = true;
    if (id == nodes_.size())
        nodes_.push_back(std::move(fresh));
    else
        nodes_[id] = std::move(fresh);
    nodeAt(parent)->children.emplace(leaf, id);
    return id;
}

int
RamfsComponent::doMkdir(const char *path)
{
    // Re-dispatches through create with directory mode; path checks
    // happen there.
    return doCreate(path, kModeDir) == kNoNode ? kErrExist : kOk;
}

int
RamfsComponent::doRemove(const char *path)
{
    std::string p;
    if (!readPath(path, &p))
        return kErrInval;
    NodeId parent;
    std::string leaf;
    const int rc = walkParent(p, &parent, &leaf);
    if (rc != kOk)
        return rc;
    const NodeId id = childOf(parent, leaf);
    Node *node = nodeAt(id);
    if (!node)
        return kErrNoEnt;
    if ((node->mode & kModeDir) && !node->children.empty())
        return kErrNotEmpty;
    if (node->pins > 0)
        return kErrBusy; // borrowed spans still reference the blocks
    dropBlocks(*node, 0);
    node->live = false;
    nodeAt(parent)->children.erase(leaf);
    return kOk;
}

std::byte *
RamfsComponent::allocBlock()
{
    // Coarse-grained allocation goes to the ALLOC cubicle — the hot
    // RAMFS→ALLOC edge of Fig. 8.
    auto *block = static_cast<std::byte *>(
        allocPages_(self(), kBlockSize / hw::kPageSize));
    if (block)
        ++blocksHeld_;
    return block;
}

void
RamfsComponent::freeBlock(std::byte *block)
{
    if (!block)
        return;
    freePages_(block, kBlockSize / hw::kPageSize);
    --blocksHeld_;
}

void
RamfsComponent::dropBlocks(Node &node, std::size_t keep)
{
    while (node.blocks.size() > keep) {
        freeBlock(node.blocks.back());
        node.blocks.pop_back();
    }
}

int64_t
RamfsComponent::doRead(NodeId id, uint64_t off, void *buf, std::size_t n)
{
    Node *node = nodeAt(id);
    if (!node)
        return kErrNoEnt;
    if (node->mode & kModeDir)
        return kErrIsDir;
    if (off >= node->size)
        return 0;
    n = std::min<uint64_t>(n, node->size - off);

    std::size_t done = 0;
    auto *out = static_cast<std::byte *>(buf);
    while (done < n) {
        const std::size_t blk = (off + done) / kBlockSize;
        const std::size_t bo = (off + done) % kBlockSize;
        const std::size_t chunk = std::min(n - done, kBlockSize - bo);
        if (blk < node->blocks.size() && node->blocks[blk]) {
            libc_.memcpy(out + done, node->blocks[blk] + bo, chunk);
            sys()->stats().countDataCopy(chunk); // block → caller buffer
        } else {
            libc_.memset(out + done, 0, chunk); // hole reads as zeros
        }
        done += chunk;
    }
    return static_cast<int64_t>(done);
}

int64_t
RamfsComponent::doWrite(NodeId id, uint64_t off, const void *buf,
                        std::size_t n)
{
    Node *node = nodeAt(id);
    if (!node)
        return kErrNoEnt;
    if (node->mode & kModeDir)
        return kErrIsDir;

    const uint64_t end = off + n;
    const std::size_t need_blocks =
        static_cast<std::size_t>((end + kBlockSize - 1) / kBlockSize);
    while (node->blocks.size() < need_blocks) {
        std::byte *block = allocBlock();
        if (!block)
            return kErrNoSpc;
        node->blocks.push_back(block);
    }

    std::size_t done = 0;
    const auto *in = static_cast<const std::byte *>(buf);
    while (done < n) {
        const std::size_t blk = (off + done) / kBlockSize;
        const std::size_t bo = (off + done) % kBlockSize;
        const std::size_t chunk = std::min(n - done, kBlockSize - bo);
        libc_.memcpy(node->blocks[blk] + bo, in + done, chunk);
        sys()->stats().countDataCopy(chunk); // caller buffer → block
        done += chunk;
    }
    node->size = std::max(node->size, end);
    return static_cast<int64_t>(done);
}

int
RamfsComponent::doTruncate(NodeId id, uint64_t size)
{
    Node *node = nodeAt(id);
    if (!node)
        return kErrNoEnt;
    if (node->mode & kModeDir)
        return kErrIsDir;
    if (size < node->size && node->pins > 0)
        return kErrBusy; // shrinking could free borrowed blocks
    if (size < node->size) {
        dropBlocks(*node,
                   static_cast<std::size_t>(
                       (size + kBlockSize - 1) / kBlockSize));
        // Zero the tail of the last kept block so re-extension reads
        // zeros, matching POSIX truncate semantics.
        if (size % kBlockSize != 0 && !node->blocks.empty()) {
            std::byte *last = node->blocks[size / kBlockSize];
            if (last) {
                std::memset(last + size % kBlockSize, 0,
                            kBlockSize - size % kBlockSize);
            }
        }
    }
    node->size = size;
    return kOk;
}

int
RamfsComponent::doGetattr(NodeId id, VfsStat *st)
{
    Node *node = nodeAt(id);
    if (!node)
        return kErrNoEnt;
    VfsStat local;
    local.size = node->size;
    local.mode = node->mode;
    local.nlink = 1;
    local.node = id;
    sys()->touch(st, sizeof(*st), hw::Access::kWrite);
    *st = local;
    return kOk;
}

int
RamfsComponent::doReaddir(const char *path, uint64_t idx, VfsDirent *out)
{
    const NodeId id = doLookup(path);
    Node *node = nodeAt(id);
    if (!node)
        return kErrNoEnt;
    if (!(node->mode & kModeDir))
        return kErrNotDir;
    if (idx >= node->children.size())
        return kErrNoEnt; // end of directory
    auto it = node->children.begin();
    std::advance(it, static_cast<long>(idx));

    VfsDirent local{};
    std::snprintf(local.name, sizeof(local.name), "%s",
                  it->first.c_str());
    local.type = nodes_[it->second].mode;
    sys()->touch(out, sizeof(*out), hw::Access::kWrite);
    *out = local;
    return kOk;
}

int
RamfsComponent::doBorrow(NodeId id, uint64_t off, core::Cid peer,
                         std::size_t max_len, VfsSpan *out)
{
    Node *node = nodeAt(id);
    if (!node)
        return kErrNoEnt;
    if (node->mode & kModeDir)
        return kErrIsDir;
    if (!out)
        return kErrInval;

    sys()->touch(out, sizeof(*out), hw::Access::kWrite);
    if (off >= node->size) {
        *out = VfsSpan{}; // len 0 signals EOF
        return kOk;
    }

    const std::size_t blk = off / kBlockSize;
    const std::size_t bo = off % kBlockSize;
    while (node->blocks.size() <= blk) {
        std::byte *fresh = allocBlock();
        if (!fresh)
            return kErrNoSpc;
        node->blocks.push_back(fresh);
    }
    std::byte *block = node->blocks[blk];
    if (!block) {
        // A hole cannot be lent by reference: materialise the block
        // with the zeros it reads as (metadata work, not a payload
        // copy — doRead would have memset the same zeros per request).
        block = allocBlock();
        if (!block)
            return kErrNoSpc;
        std::memset(block, 0, kBlockSize);
        node->blocks[blk] = block;
    }

    // Readahead merge: extend the span over physically-contiguous,
    // already-materialised successor blocks (sequential writers get
    // contiguous blocks from the ALLOC bump path) so one borrow — and
    // ONE staged window range, one epoch cycle, one retag — serves up
    // to kReadAheadBlocks blocks instead of one per block.
    const uint64_t want = std::min<uint64_t>(
        max_len ? max_len : node->size - off, node->size - off);
    std::size_t run = 1;
    while (run < kReadAheadBlocks &&
           static_cast<uint64_t>(run) * kBlockSize - bo < want &&
           blk + run < node->blocks.size() &&
           node->blocks[blk + run] == block + run * kBlockSize)
        ++run;

    // One persistent RAMFS-owned window per borrowing peer; its ACL
    // opens once and stays open (lazy revocation, §5.6) while staged
    // block runs come and go with the borrows. The window declares
    // Prestage::kRead: staging a run eagerly retags it to the peer, so
    // the peer's reads of borrowed data never fault at all.
    auto wit = peerWins_.find(peer);
    if (wit == peerWins_.end()) {
        const PeerSet peers{peer};
        GrantWindow win(*sys(), peers, /*hot=*/false, Prestage::kRead);
        win.open(peers);
        wit = peerWins_.emplace(peer, std::move(win)).first;
    }
    StagedRun &sr = stagedRefs_[{peer, block}];
    if (sr.refs == 0) {
        wit->second.stage(block, run * kBlockSize);
        sr.blocks = run;
    } else {
        // A same-start borrow reuses the staged range; the span must
        // not outrun what is actually granted.
        run = std::min(run, sr.blocks);
    }
    ++sr.refs;

    const uint64_t token = nextToken_++;
    borrows_[token] = Borrow{id, peer, block};
    ++node->pins;

    VfsSpan span;
    span.ptr = block + bo;
    span.len = std::min<uint64_t>(run * kBlockSize - bo,
                                  node->size - off);
    if (max_len)
        span.len = std::min<uint64_t>(span.len, max_len);
    span.token = token;
    *out = span;
    return kOk;
}

int
RamfsComponent::doRelease(NodeId id, uint64_t token)
{
    auto it = borrows_.find(token);
    if (it == borrows_.end() || it->second.node != id)
        return kErrInval;
    const Borrow b = it->second;
    borrows_.erase(it);

    auto rit = stagedRefs_.find({b.peer, b.block});
    if (rit != stagedRefs_.end() && --rit->second.refs == 0) {
        stagedRefs_.erase(rit);
        auto wit = peerWins_.find(b.peer);
        if (wit != peerWins_.end())
            wit->second.unstage(b.block);
    }
    Node *node = nodeAt(id);
    if (node && node->pins > 0)
        --node->pins;
    return kOk;
}

void
RamfsComponent::registerExports(core::Exporter &exp)
{
    exp.fn<NodeId(const char *)>(
        "ramfs_lookup", [this](const char *p) { return doLookup(p); });
    exp.fn<NodeId(const char *, uint32_t)>(
        "ramfs_create",
        [this](const char *p, uint32_t m) { return doCreate(p, m); });
    exp.fn<int(const char *)>(
        "ramfs_remove", [this](const char *p) { return doRemove(p); });
    exp.fn<int(const char *)>(
        "ramfs_mkdir", [this](const char *p) { return doMkdir(p); });
    exp.fn<int64_t(NodeId, uint64_t, void *, std::size_t)>(
        "ramfs_read",
        [this](NodeId id, uint64_t off, void *buf, std::size_t n) {
            return doRead(id, off, buf, n);
        });
    exp.fn<int64_t(NodeId, uint64_t, const void *, std::size_t)>(
        "ramfs_write",
        [this](NodeId id, uint64_t off, const void *buf, std::size_t n) {
            return doWrite(id, off, buf, n);
        });
    exp.fn<int(NodeId, uint64_t)>(
        "ramfs_truncate",
        [this](NodeId id, uint64_t size) { return doTruncate(id, size); });
    exp.fn<int(NodeId, VfsStat *)>(
        "ramfs_getattr",
        [this](NodeId id, VfsStat *st) { return doGetattr(id, st); });
    exp.fn<int(const char *, uint64_t, VfsDirent *)>(
        "ramfs_readdir",
        [this](const char *p, uint64_t idx, VfsDirent *out) {
            return doReaddir(p, idx, out);
        });
    exp.fn<int(NodeId)>("ramfs_sync", [](NodeId) { return kOk; });
    exp.fn<int(NodeId, uint64_t, core::Cid, std::size_t, VfsSpan *)>(
        "ramfs_borrow",
        [this](NodeId id, uint64_t off, core::Cid peer,
               std::size_t max_len, VfsSpan *out) {
            return doBorrow(id, off, peer, max_len, out);
        });
    exp.fn<int(NodeId, uint64_t)>(
        "ramfs_release", [this](NodeId id, uint64_t token) {
            return doRelease(id, token);
        });
}

} // namespace cubicleos::libos
