/**
 * @file
 * The TIME cubicle: monotonic and wall clocks for the library OS.
 *
 * Isolated component; obtains raw ticks from PLAT through cross-cubicle
 * calls (generating the TIME→PLAT edge visible in the paper's component
 * graphs) and caches a boot offset.
 */

#ifndef CUBICLEOS_LIBOS_TIME_H_
#define CUBICLEOS_LIBOS_TIME_H_

#include "core/system.h"

namespace cubicleos::libos {

/** The isolated time component. */
class TimeComponent : public core::Component {
  public:
    core::ComponentSpec spec() const override
    {
        core::ComponentSpec s;
        s.name = "time";
        s.kind = core::CubicleKind::kIsolated;
        return s;
    }

    void registerExports(core::Exporter &exp) override;
    void init() override;

  private:
    core::CrossFn<uint64_t()> platTicks_;
    uint64_t bootNs_ = 0;
};

} // namespace cubicleos::libos

#endif // CUBICLEOS_LIBOS_TIME_H_
