/**
 * @file
 * The ALLOC cubicle: system-wide coarse-grained (page) allocator.
 *
 * Each cubicle runs its own fine-grained sub-allocator and only comes
 * to ALLOC for whole-page chunks (paper §6.4) — which is why the
 * paper's Fig. 8 shows RAMFS→ALLOC as the hottest edge of the SQLite
 * deployment. wireHeapsThroughAlloc() reroutes every cubicle heap's
 * page source through cross-cubicle calls into this component.
 */

#ifndef CUBICLEOS_LIBOS_ALLOC_H_
#define CUBICLEOS_LIBOS_ALLOC_H_

#include "core/system.h"

namespace cubicleos::libos {

/** The isolated page-allocator component. */
class AllocComponent : public core::Component {
  public:
    core::ComponentSpec spec() const override
    {
        core::ComponentSpec s;
        s.name = "alloc";
        s.kind = core::CubicleKind::kIsolated;
        return s;
    }

    void registerExports(core::Exporter &exp) override;

    /** Pages handed out since boot (introspection). */
    uint64_t pagesServed() const { return pagesServed_; }

  private:
    uint64_t pagesServed_ = 0;
};

/**
 * Reroutes the heap page source of every isolated cubicle except ALLOC
 * itself through cross-cubicle calls to the ALLOC component. Call once
 * after boot (typically from the BOOT component's init).
 */
void wireHeapsThroughAlloc(core::System &sys);

} // namespace cubicleos::libos

#endif // CUBICLEOS_LIBOS_ALLOC_H_
