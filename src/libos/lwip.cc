#include "libos/lwip.h"

#include <cstring>

#include "libos/grant.h"

namespace cubicleos::libos {

void
LwipComponent::init()
{
    netdevTx_ = sys()->resolve<int(const uint8_t *, std::size_t)>(
        "netdev", "netdev_tx");
    netdevRx_ = sys()->resolve<int64_t(uint8_t *, std::size_t)>(
        "netdev", "netdev_rx");

    // Packet staging buffers in LWIP-owned pages, windowed for NETDEV
    // so packet payloads move zero-copy through the driver boundary.
    // The window is hot (§8): these two pages change hands on every
    // single frame — the stack writes txBuf_, the driver reads it, the
    // driver writes rxBuf_, the stack reads it — which is the
    // frequently-used-window case the paper gives a dedicated MPK key.
    // A cold window here costs two to three trap-and-map faults per
    // frame (~10k modelled cycles against a ~4 us wire), dominating the
    // large-transfer overhead.
    auto rx = sys()->monitor().allocPagesFor(self(), 1,
                                             mem::PageType::kHeap);
    auto tx = sys()->monitor().allocPagesFor(self(), 1,
                                             mem::PageType::kHeap);
    if (!rx.valid() || !tx.valid())
        throw core::OutOfMemory("lwip packet buffers");
    rxBuf_ = reinterpret_cast<uint8_t *>(rx.ptr);
    txBuf_ = reinterpret_cast<uint8_t *>(tx.ptr);

    const PeerSet netdevPeers{sys()->cidOf("netdev")};
    netdevWin_ = GrantWindow(*sys(), netdevPeers, /*hot=*/true);
    netdevWin_.stage(rxBuf_, hw::kPageSize);
    netdevWin_.stage(txBuf_, hw::kPageSize);

    // Feed the stack's payload-copy accounting into the system-wide
    // data-copy counters the sendfile experiment compares.
    stack_.setCopyHook(
        [this](std::size_t bytes) { sys()->stats().countDataCopy(bytes); });
}

int64_t
LwipComponent::doPoll(uint64_t now_ns)
{
    int64_t processed = 0;

    // Drain the device's receive queue into the stack.
    for (;;) {
        const int64_t n = netdevRx_(rxBuf_, kMtu);
        if (n <= 0)
            break;
        // The device wrote our buffer; reclaim the page lazily.
        sys()->touch(rxBuf_, static_cast<std::size_t>(n),
                     hw::Access::kRead);
        stack_.input(rxBuf_, static_cast<std::size_t>(n));
        ++processed;
    }

    stack_.tick(now_ns);

    // Emit every sendable segment through the driver.
    stack_.pollOutput([&](const uint8_t *pkt, std::size_t len) {
        sys()->touch(txBuf_, len, hw::Access::kWrite);
        std::memcpy(txBuf_, pkt, len);
        netdevTx_(txBuf_, len);
        ++processed;
    });

    // Mirror the stack's zero-copy segment counters into the
    // system-wide stats (the stack itself is System-agnostic).
    const TcpStats &ts = stack_.stats();
    if (ts.zcSegsOut > zcSegsSeen_) {
        sys()->stats().countZeroCopySend(ts.zcBytesOut - zcBytesSeen_,
                                         ts.zcSegsOut - zcSegsSeen_);
        zcSegsSeen_ = ts.zcSegsOut;
        zcBytesSeen_ = ts.zcBytesOut;
    }
    return processed;
}

void
LwipComponent::registerExports(core::Exporter &exp)
{
    exp.fn<int()>("lwip_socket", [this] { return stack_.socket(); });
    exp.fn<int(int, uint16_t)>("lwip_bind", [this](int fd, uint16_t p) {
        return stack_.bind(fd, p);
    });
    exp.fn<int(int, int)>("lwip_listen", [this](int fd, int bl) {
        return stack_.listen(fd, bl);
    });
    exp.fn<int(int)>("lwip_accept",
                     [this](int fd) { return stack_.accept(fd); });
    exp.fn<int(int, uint32_t, uint16_t)>(
        "lwip_connect", [this](int fd, uint32_t ip, uint16_t port) {
            return stack_.connect(fd, ip, port);
        });
    exp.fn<int64_t(int, const void *, std::size_t)>(
        "lwip_send", [this](int fd, const void *buf, std::size_t n) {
            if (n > 0)
                sys()->touch(buf, n, hw::Access::kRead);
            return stack_.send(fd, buf, n);
        });
    exp.fn<int64_t(int, void *, std::size_t)>(
        "lwip_recv", [this](int fd, void *buf, std::size_t n) {
            if (n > 0)
                sys()->touch(buf, n, hw::Access::kWrite);
            return stack_.recv(fd, buf, n);
        });
    exp.fn<int64_t(int, const void *, std::size_t)>(
        "lwip_sendz", [this](int fd, const void *span, std::size_t n) {
            // The span lives in backend-owned pages granted to this
            // cubicle by the borrow that produced it; the touch models
            // our first read through that grant. No bytes are copied —
            // the queue keeps only the reference.
            if (n > 0)
                sys()->touch(span, n, hw::Access::kRead);
            return stack_.sendZero(fd, span, n);
        });
    exp.fn<int64_t(int)>("lwip_zc_done", [this](int fd) {
        return stack_.zeroCopyDone(fd);
    });
    exp.fn<int(int)>("lwip_close",
                     [this](int fd) { return stack_.close(fd); });
    exp.fn<int(int)>("lwip_established", [this](int fd) {
        return stack_.isEstablished(fd) ? 1 : 0;
    });
    exp.fn<int(int)>("lwip_send_drained", [this](int fd) {
        return stack_.sendDrained(fd) ? 1 : 0;
    });
    exp.fn<int64_t(uint64_t)>(
        "lwip_poll", [this](uint64_t now_ns) { return doPoll(now_ns); });
}

} // namespace cubicleos::libos
