/**
 * @file
 * Helpers assembling the standard library-OS cubicle configurations
 * used throughout the evaluation:
 *
 *  - SQLite deployment (paper Fig. 8): PLAT, ALLOC, TIME, VFSCORE,
 *    RAMFS, <application>, BOOT as isolated cubicles + shared LIBC and
 *    RANDOM — 7 isolated cubicles with the application.
 *  - NGINX deployment (paper Fig. 5): the above plus NETDEV and LWIP —
 *    8 isolated cubicles.
 */

#ifndef CUBICLEOS_LIBOS_STACK_H_
#define CUBICLEOS_LIBOS_STACK_H_

#include <memory>

#include "core/system.h"

namespace cubicleos::libos {

class FrameChannel;

/** Options for buildLibosStack(). */
struct StackOptions {
    /** Also register NETDEV and the LWIP network stack. */
    bool withNet = false;
    /** Wire connecting NETDEV to the outside world (required if net). */
    FrameChannel *wire = nullptr;
    /** Seed for the shared RANDOM cubicle. */
    uint64_t randomSeed = 0xC0FFEE;
    /** Echo PLAT console output to stdout. */
    bool echoConsole = false;
};

/**
 * Registers the base library OS components on @p sys: PLAT, ALLOC,
 * TIME, VFSCORE, RAMFS (+ NETDEV, LWIP when requested) and the shared
 * LIBC and RANDOM cubicles. The caller then registers application
 * components and finally finishBoot().
 */
void addLibosComponents(core::System &sys, const StackOptions &opts = {});

/**
 * Registers the BOOT component (mounting "ramfs" at the root and wiring
 * heaps through ALLOC) and boots the system.
 */
void finishBoot(core::System &sys);

} // namespace cubicleos::libos

#endif // CUBICLEOS_LIBOS_STACK_H_
