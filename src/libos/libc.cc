#include "libos/libc.h"

namespace cubicleos::libos {

void
LibcComponent::registerExports(core::Exporter &exp)
{
    core::System *system = sys();

    exp.fn<void(void *, const void *, std::size_t)>(
        "memcpy", [system](void *dst, const void *src, std::size_t n) {
            system->memcpyChecked(dst, src, n);
        });

    exp.fn<void(void *, int, std::size_t)>(
        "memset", [system](void *dst, int v, std::size_t n) {
            system->memsetChecked(dst, v, n);
        });

    exp.fn<std::size_t(const char *, std::size_t)>(
        "strnlen", [system](const char *s, std::size_t max) {
            std::size_t n = 0;
            while (n < max) {
                system->touch(s + n, 1, hw::Access::kRead);
                if (s[n] == '\0')
                    break;
                ++n;
            }
            return n;
        });

    exp.fn<int(const char *, const char *)>(
        "strcmp", [system](const char *a, const char *b) {
            for (std::size_t i = 0;; ++i) {
                system->touch(a + i, 1, hw::Access::kRead);
                system->touch(b + i, 1, hw::Access::kRead);
                if (a[i] != b[i])
                    return a[i] < b[i] ? -1 : 1;
                if (a[i] == '\0')
                    return 0;
            }
        });
}

Libc::Libc(core::System &sys)
    : memcpy_(sys.resolve<void(void *, const void *, std::size_t)>(
          "libc", "memcpy")),
      memset_(sys.resolve<void(void *, int, std::size_t)>("libc",
                                                          "memset")),
      strnlen_(sys.resolve<std::size_t(const char *, std::size_t)>(
          "libc", "strnlen")),
      strcmp_(sys.resolve<int(const char *, const char *)>("libc",
                                                           "strcmp"))
{
}

} // namespace cubicleos::libos
