/**
 * @file
 * The shared RANDOM cubicle: a deterministic pseudo-random device.
 *
 * Mirrors Unikraft's random device driver, which CubicleOS keeps in a
 * shared cubicle (paper §6.3). Deterministic by default so benchmark
 * workloads are reproducible.
 */

#ifndef CUBICLEOS_LIBOS_RANDOM_H_
#define CUBICLEOS_LIBOS_RANDOM_H_

#include "core/system.h"
#include "hw/prng.h"

namespace cubicleos::libos {

/** The shared random-device component. */
class RandomComponent : public core::Component {
  public:
    explicit RandomComponent(uint64_t seed = 0xC0FFEE) : prng_(seed) {}

    core::ComponentSpec spec() const override
    {
        core::ComponentSpec s;
        s.name = "random";
        s.kind = core::CubicleKind::kShared;
        return s;
    }

    void registerExports(core::Exporter &exp) override
    {
        exp.fn<uint64_t()>("rand_u64", [this] { return prng_.next(); });
        exp.fn<uint64_t(uint64_t)>(
            "rand_below",
            [this](uint64_t bound) { return prng_.nextBelow(bound); });
        exp.fn<void(uint64_t)>("rand_seed", [this](uint64_t seed) {
            prng_ = hw::Prng(seed);
        });
    }

  private:
    hw::Prng prng_;
};

} // namespace cubicleos::libos

#endif // CUBICLEOS_LIBOS_RANDOM_H_
