/**
 * @file
 * A generic application component: an isolated cubicle that hosts
 * arbitrary application code (the "app is just another component"
 * property of Unikraft/CubicleOS, paper §5.2).
 */

#ifndef CUBICLEOS_LIBOS_APP_H_
#define CUBICLEOS_LIBOS_APP_H_

#include <functional>
#include <string>
#include <utility>

#include "core/system.h"

namespace cubicleos::libos {

/** An isolated cubicle for application code. */
class AppComponent : public core::Component {
  public:
    explicit AppComponent(std::string name = "app",
                          std::function<void()> init_fn = {})
        : name_(std::move(name)), initFn_(std::move(init_fn))
    {}

    core::ComponentSpec spec() const override
    {
        core::ComponentSpec s;
        s.name = name_;
        s.kind = core::CubicleKind::kIsolated;
        return s;
    }

    void registerExports(core::Exporter &) override {}

    void init() override
    {
        if (initFn_)
            initFn_();
    }

    /** Runs @p fn with the calling thread inside this cubicle. */
    template <typename F>
    decltype(auto) run(F &&fn)
    {
        return sys()->runAs(self(), std::forward<F>(fn));
    }

  private:
    std::string name_;
    std::function<void()> initFn_;
};

} // namespace cubicleos::libos

#endif // CUBICLEOS_LIBOS_APP_H_
