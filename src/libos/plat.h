/**
 * @file
 * The PLAT cubicle: platform glue (console, raw ticks, abort).
 *
 * Unikraft's platform code is the layer that would issue host system
 * calls; in CubicleOS it is an isolated cubicle so a compromised driver
 * cannot reach the host interface of other components. In this
 * reproduction "the host" is the simulated machine: console output is
 * collected in-memory (or echoed), and ticks come from the virtual
 * cycle clock plus real time.
 */

#ifndef CUBICLEOS_LIBOS_PLAT_H_
#define CUBICLEOS_LIBOS_PLAT_H_

#include <chrono>
#include <string>

#include "core/system.h"

namespace cubicleos::libos {

/** The isolated platform component. */
class PlatComponent : public core::Component {
  public:
    explicit PlatComponent(bool echo_console = false)
        : echo_(echo_console)
    {}

    core::ComponentSpec spec() const override
    {
        core::ComponentSpec s;
        s.name = "plat";
        s.kind = core::CubicleKind::kIsolated;
        return s;
    }

    void registerExports(core::Exporter &exp) override;

    /** Console output captured so far (host-side introspection). */
    const std::string &consoleLog() const { return console_; }

  private:
    uint64_t nowNs() const;

    bool echo_;
    std::string console_;
    std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
};

} // namespace cubicleos::libos

#endif // CUBICLEOS_LIBOS_PLAT_H_
