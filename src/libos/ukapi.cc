#include "libos/ukapi.h"

#include <cstring>

namespace cubicleos::libos {

CubicleFileApi::CubicleFileApi(core::System &sys,
                               const std::string &backend_name,
                               bool hot_windows)
    : sys_(sys),
      vfsCid_(sys.cidOf("vfscore")),
      backendCid_(sys.cidOf(backend_name)),
      peers_{vfsCid_, backendCid_},
      hotWindows_(hot_windows),
      open_(sys.resolve<int(const char *, int)>("vfscore", "vfs_open")),
      close_(sys.resolve<int(int)>("vfscore", "vfs_close")),
      read_(sys.resolve<int64_t(int, void *, std::size_t)>("vfscore",
                                                           "vfs_read")),
      write_(sys.resolve<int64_t(int, const void *, std::size_t)>(
          "vfscore", "vfs_write")),
      pread_(sys.resolve<int64_t(int, void *, std::size_t, uint64_t)>(
          "vfscore", "vfs_pread")),
      pwrite_(
          sys.resolve<int64_t(int, const void *, std::size_t, uint64_t)>(
              "vfscore", "vfs_pwrite")),
      lseek_(sys.resolve<int64_t(int, int64_t, int)>("vfscore",
                                                     "vfs_lseek")),
      fstat_(sys.resolve<int(int, VfsStat *)>("vfscore", "vfs_fstat")),
      stat_(sys.resolve<int(const char *, VfsStat *)>("vfscore",
                                                      "vfs_stat")),
      unlink_(sys.resolve<int(const char *)>("vfscore", "vfs_unlink")),
      mkdir_(sys.resolve<int(const char *)>("vfscore", "vfs_mkdir")),
      readdir_(sys.resolve<int(const char *, uint64_t, VfsDirent *)>(
          "vfscore", "vfs_readdir")),
      ftruncate_(
          sys.resolve<int(int, uint64_t)>("vfscore", "vfs_ftruncate")),
      fsync_(sys.resolve<int(int)>("vfscore", "vfs_fsync")),
      borrow_(sys.resolve<int(int, uint64_t, core::Cid, std::size_t,
                              VfsSpan *)>("vfscore", "vfs_borrow")),
      release_(sys.resolve<int(int, uint64_t)>("vfscore", "vfs_release"))
{
    // Persistent arena window over the transfer page, open for the
    // whole file stack; one window per peer set keeps the descriptor
    // arrays short (paper: <10 windows per cubicle). The arena owns
    // the page and frees it on destruction. It is always hot (§8): the
    // page ping-pongs between app, VFSCORE and backend on every call,
    // and — unlike the I/O buffers — it holds no application data, so
    // trading its temporal isolation for a dedicated key costs nothing
    // and spares three-plus faults per call whenever an unrelated
    // revocation bumps the grant epoch.
    xfer_ = XferArena(sys_, 1, peers_, /*hot=*/true);

    // Per-I/O window, managed by a Grant around each call. In
    // hot-window mode it gets a dedicated MPK key (paper §8), its ACL
    // stays open, and per-call work reduces to re-staging the range
    // when the buffer changes.
    ioWin_ = GrantWindow(sys_, peers_, hotWindows_);
}

const char *
CubicleFileApi::stagePath(const char *path)
{
    xfer_.touchForWrite(0, kMaxPath);
    char *staged = xfer_.base();
    std::strncpy(staged, path, kMaxPath - 1);
    staged[kMaxPath - 1] = '\0';
    return staged;
}

int
CubicleFileApi::open(const char *path, int flags)
{
    return guarded<int>([&] { return open_(stagePath(path), flags); });
}

int
CubicleFileApi::close(int fd)
{
    return guarded<int>([&] { return close_(fd); });
}

int64_t
CubicleFileApi::read(int fd, void *buf, std::size_t n)
{
    // Only the backend touches the data buffer (VFSCORE forwards the
    // pointer), and on a read it always writes into it: declare that
    // so the backend's first store is a prestaged retag, not a trap.
    return guarded<int64_t>([&] {
        Grant grant(sys_, ioWin_, peers_, buf, n, hw::Access::kRead,
                    Prestage::kWrite, PeerSet{backendCid_});
        return read_(fd, buf, n);
    });
}

int64_t
CubicleFileApi::write(int fd, const void *buf, std::size_t n)
{
    return guarded<int64_t>([&] {
        Grant grant(sys_, ioWin_, peers_, buf, n, hw::Access::kRead,
                    Prestage::kRead, PeerSet{backendCid_});
        return write_(fd, buf, n);
    });
}

int64_t
CubicleFileApi::pread(int fd, void *buf, std::size_t n, uint64_t off)
{
    return guarded<int64_t>([&] {
        Grant grant(sys_, ioWin_, peers_, buf, n, hw::Access::kRead,
                    Prestage::kWrite, PeerSet{backendCid_});
        return pread_(fd, buf, n, off);
    });
}

int64_t
CubicleFileApi::pwrite(int fd, const void *buf, std::size_t n,
                       uint64_t off)
{
    return guarded<int64_t>([&] {
        Grant grant(sys_, ioWin_, peers_, buf, n, hw::Access::kRead,
                    Prestage::kRead, PeerSet{backendCid_});
        return pwrite_(fd, buf, n, off);
    });
}

int64_t
CubicleFileApi::lseek(int fd, int64_t off, int whence)
{
    return guarded<int64_t>([&] { return lseek_(fd, off, whence); });
}

int
CubicleFileApi::stat(const char *path, VfsStat *st)
{
    // Stage both the path and the out-struct on the transfer page.
    return guarded<int>([&] {
        const char *p = stagePath(path);
        auto *out = reinterpret_cast<VfsStat *>(xfer_.at(kMaxPath));
        const int rc = stat_(p, out);
        sys_.touch(out, sizeof(*out), hw::Access::kRead);
        *st = *out;
        return rc;
    });
}

int
CubicleFileApi::fstat(int fd, VfsStat *st)
{
    return guarded<int>([&] {
        xfer_.touchForWrite(0, hw::kPageSize);
        auto *out = reinterpret_cast<VfsStat *>(xfer_.at(kMaxPath));
        const int rc = fstat_(fd, out);
        sys_.touch(out, sizeof(*out), hw::Access::kRead);
        *st = *out;
        return rc;
    });
}

int
CubicleFileApi::unlink(const char *path)
{
    return guarded<int>([&] { return unlink_(stagePath(path)); });
}

int
CubicleFileApi::mkdir(const char *path)
{
    return guarded<int>([&] { return mkdir_(stagePath(path)); });
}

int
CubicleFileApi::ftruncate(int fd, uint64_t size)
{
    return guarded<int>([&] { return ftruncate_(fd, size); });
}

int
CubicleFileApi::fsync(int fd)
{
    return guarded<int>([&] { return fsync_(fd); });
}

int
CubicleFileApi::readdir(const char *path, uint64_t idx, VfsDirent *out)
{
    return guarded<int>([&] {
        const char *p = stagePath(path);
        auto *staged = reinterpret_cast<VfsDirent *>(xfer_.at(kMaxPath));
        const int rc = readdir_(p, idx, staged);
        sys_.touch(staged, sizeof(*staged), hw::Access::kRead);
        *out = *staged;
        return rc;
    });
}

int
CubicleFileApi::borrow(int fd, uint64_t off, core::Cid peer,
                       std::size_t max_len, VfsSpan *out)
{
    // The out-struct is staged past the path slot so a concurrent
    // stagePath cannot clobber it; the arena window already covers it
    // for VFSCORE and the backend.
    return guarded<int>([&] {
        auto *staged = reinterpret_cast<VfsSpan *>(xfer_.at(kMaxPath));
        sys_.touch(staged, sizeof(*staged), hw::Access::kWrite);
        *staged = VfsSpan{};
        const int rc = borrow_(fd, off, peer, max_len, staged);
        sys_.touch(staged, sizeof(*staged), hw::Access::kRead);
        *out = *staged;
        return rc;
    });
}

int
CubicleFileApi::release(int fd, uint64_t token)
{
    return guarded<int>([&] { return release_(fd, token); });
}

int
mountRoot(core::System &sys, const std::string &backend)
{
    auto vfs_mount =
        sys.resolve<int(const char *)>("vfscore", "vfs_mount");
    const core::Cid vfs = sys.cidOf("vfscore");

    core::StackFrame frame(sys);
    char *staged = static_cast<char *>(frame.allocPageAligned(kMaxPath));
    sys.touch(staged, kMaxPath, hw::Access::kWrite);
    std::strncpy(staged, backend.c_str(), kMaxPath - 1);
    staged[kMaxPath - 1] = '\0';

    const PeerSet peers{vfs};
    GrantWindow win(sys, peers);
    int rc;
    {
        Grant grant(sys, win, peers, staged, kMaxPath,
                    hw::Access::kRead);
        rc = vfs_mount(staged);
    }
    return rc;
}

} // namespace cubicleos::libos
