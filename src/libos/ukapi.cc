#include "libos/ukapi.h"

#include <cstring>

namespace cubicleos::libos {

CubicleFileApi::CubicleFileApi(core::System &sys,
                               const std::string &backend_name,
                               bool hot_windows)
    : sys_(sys),
      vfsCid_(sys.cidOf("vfscore")),
      backendCid_(sys.cidOf(backend_name)),
      open_(sys.resolve<int(const char *, int)>("vfscore", "vfs_open")),
      close_(sys.resolve<int(int)>("vfscore", "vfs_close")),
      read_(sys.resolve<int64_t(int, void *, std::size_t)>("vfscore",
                                                           "vfs_read")),
      write_(sys.resolve<int64_t(int, const void *, std::size_t)>(
          "vfscore", "vfs_write")),
      pread_(sys.resolve<int64_t(int, void *, std::size_t, uint64_t)>(
          "vfscore", "vfs_pread")),
      pwrite_(
          sys.resolve<int64_t(int, const void *, std::size_t, uint64_t)>(
              "vfscore", "vfs_pwrite")),
      lseek_(sys.resolve<int64_t(int, int64_t, int)>("vfscore",
                                                     "vfs_lseek")),
      fstat_(sys.resolve<int(int, VfsStat *)>("vfscore", "vfs_fstat")),
      stat_(sys.resolve<int(const char *, VfsStat *)>("vfscore",
                                                      "vfs_stat")),
      unlink_(sys.resolve<int(const char *)>("vfscore", "vfs_unlink")),
      mkdir_(sys.resolve<int(const char *)>("vfscore", "vfs_mkdir")),
      readdir_(sys.resolve<int(const char *, uint64_t, VfsDirent *)>(
          "vfscore", "vfs_readdir")),
      ftruncate_(
          sys.resolve<int(int, uint64_t)>("vfscore", "vfs_ftruncate")),
      fsync_(sys.resolve<int(int)>("vfscore", "vfs_fsync"))
{
    hotWindows_ = hot_windows;
    const core::Cid self = sys_.currentCubicle();
    auto range = sys_.monitor().allocPagesFor(self, 1,
                                              mem::PageType::kHeap);
    if (!range.valid())
        throw core::OutOfMemory("CubicleFileApi transfer page");
    xferPage_ = reinterpret_cast<char *>(range.ptr);

    // Persistent window over the transfer page, open for the whole
    // file stack; one window per peer set keeps the descriptor arrays
    // short (paper: <10 windows per cubicle).
    xferWindow_ = sys_.windowInit();
    if (hotWindows_)
        sys_.windowSetHot(xferWindow_);
    sys_.windowAdd(xferWindow_, xferPage_, hw::kPageSize);
    sys_.windowOpen(xferWindow_, vfsCid_);
    sys_.windowOpen(xferWindow_, backendCid_);

    // Per-I/O window, managed by BufferGrant around each call. In
    // hot-window mode it gets a dedicated MPK key (paper §8) and its
    // ACL stays open; per-call work reduces to re-staging the range
    // when the buffer changes.
    ioWindow_ = sys_.windowInit();
    if (hotWindows_) {
        sys_.windowSetHot(ioWindow_);
        sys_.windowOpen(ioWindow_, vfsCid_);
        sys_.windowOpen(ioWindow_, backendCid_);
    }
}

CubicleFileApi::~CubicleFileApi()
{
    // Windows belong to the app cubicle; destroying them outside it
    // would violate the ownership rule, so re-enter if needed.
    sys_.runAs(sys_.monitor().pageMeta()
                   .at(sys_.monitor().space().pageIndexOf(xferPage_))
                   .owner,
               [&] {
                   sys_.windowDestroy(xferWindow_);
                   sys_.windowDestroy(ioWindow_);
               });
}

CubicleFileApi::BufferGrant::BufferGrant(CubicleFileApi &api,
                                         const void *buf, std::size_t n,
                                         hw::Access reclaim_access)
    : api_(api), buf_(buf), n_(n), reclaim_(reclaim_access)
{
    // Host-private buffers (outside the simulated machine) need no
    // window: they are unsimulated thread-private memory, consistent
    // with System::touch's policy.
    if (!api_.sys_.monitor().space().contains(buf_)) {
        buf_ = nullptr;
        return;
    }
    if (api_.hotWindows_) {
        // Hot-window mode: the window's dedicated key stays in every
        // party's PKRU; only re-stage the range when the buffer
        // changes (windowAdd eagerly tags the pages with the key).
        if (api_.hotBuf_ == buf_)
            return;
        if (api_.hotBuf_)
            api_.sys_.windowRemove(api_.ioWindow_, api_.hotBuf_);
        api_.sys_.windowAdd(api_.ioWindow_, buf_, n_);
        api_.hotBuf_ = buf_;
        return;
    }
    api_.sys_.windowAdd(api_.ioWindow_, buf_, n_);
    api_.sys_.windowOpen(api_.ioWindow_, api_.vfsCid_);
    api_.sys_.windowOpen(api_.ioWindow_, api_.backendCid_);
}

CubicleFileApi::BufferGrant::~BufferGrant()
{
    if (!buf_)
        return; // host-private buffer; nothing was granted
    if (api_.hotWindows_) {
        // The window stays open and the pages keep the callee's tag;
        // the owner reclaims lazily only when it really touches them.
        return;
    }
    api_.sys_.windowRemove(api_.ioWindow_, buf_);
    api_.sys_.windowCloseAll(api_.ioWindow_);
    // Model the caller's next direct access to its buffer: trap-and-map
    // lazily retags the page back to the owner.
    api_.sys_.touch(buf_, n_, reclaim_);
}

const char *
CubicleFileApi::stagePath(const char *path)
{
    sys_.touch(xferPage_, kMaxPath, hw::Access::kWrite);
    std::strncpy(xferPage_, path, kMaxPath - 1);
    xferPage_[kMaxPath - 1] = '\0';
    return xferPage_;
}

int
CubicleFileApi::open(const char *path, int flags)
{
    return open_(stagePath(path), flags);
}

int
CubicleFileApi::close(int fd)
{
    return close_(fd);
}

int64_t
CubicleFileApi::read(int fd, void *buf, std::size_t n)
{
    BufferGrant grant(*this, buf, n, hw::Access::kRead);
    return read_(fd, buf, n);
}

int64_t
CubicleFileApi::write(int fd, const void *buf, std::size_t n)
{
    BufferGrant grant(*this, buf, n, hw::Access::kRead);
    return write_(fd, buf, n);
}

int64_t
CubicleFileApi::pread(int fd, void *buf, std::size_t n, uint64_t off)
{
    BufferGrant grant(*this, buf, n, hw::Access::kRead);
    return pread_(fd, buf, n, off);
}

int64_t
CubicleFileApi::pwrite(int fd, const void *buf, std::size_t n,
                       uint64_t off)
{
    BufferGrant grant(*this, buf, n, hw::Access::kRead);
    return pwrite_(fd, buf, n, off);
}

int64_t
CubicleFileApi::lseek(int fd, int64_t off, int whence)
{
    return lseek_(fd, off, whence);
}

int
CubicleFileApi::stat(const char *path, VfsStat *st)
{
    // Stage both the path and the out-struct on the transfer page.
    const char *p = stagePath(path);
    auto *out = reinterpret_cast<VfsStat *>(xferPage_ + kMaxPath);
    const int rc = stat_(p, out);
    sys_.touch(out, sizeof(*out), hw::Access::kRead);
    *st = *out;
    return rc;
}

int
CubicleFileApi::fstat(int fd, VfsStat *st)
{
    sys_.touch(xferPage_, hw::kPageSize, hw::Access::kWrite);
    auto *out = reinterpret_cast<VfsStat *>(xferPage_ + kMaxPath);
    const int rc = fstat_(fd, out);
    sys_.touch(out, sizeof(*out), hw::Access::kRead);
    *st = *out;
    return rc;
}

int
CubicleFileApi::unlink(const char *path)
{
    return unlink_(stagePath(path));
}

int
CubicleFileApi::mkdir(const char *path)
{
    return mkdir_(stagePath(path));
}

int
CubicleFileApi::ftruncate(int fd, uint64_t size)
{
    return ftruncate_(fd, size);
}

int
CubicleFileApi::fsync(int fd)
{
    return fsync_(fd);
}

int
CubicleFileApi::readdir(const char *path, uint64_t idx, VfsDirent *out)
{
    const char *p = stagePath(path);
    auto *staged = reinterpret_cast<VfsDirent *>(xferPage_ + kMaxPath);
    const int rc = readdir_(p, idx, staged);
    sys_.touch(staged, sizeof(*staged), hw::Access::kRead);
    *out = *staged;
    return rc;
}

int
mountRoot(core::System &sys, const std::string &backend)
{
    auto vfs_mount =
        sys.resolve<int(const char *)>("vfscore", "vfs_mount");
    const core::Cid vfs = sys.cidOf("vfscore");

    core::StackFrame frame(sys);
    char *staged = static_cast<char *>(frame.allocPageAligned(kMaxPath));
    sys.touch(staged, kMaxPath, hw::Access::kWrite);
    std::strncpy(staged, backend.c_str(), kMaxPath - 1);
    staged[kMaxPath - 1] = '\0';

    const core::Wid wid = sys.windowInit();
    sys.windowAdd(wid, staged, kMaxPath);
    sys.windowOpen(wid, vfs);
    const int rc = vfs_mount(staged);
    sys.windowDestroy(wid);
    return rc;
}

} // namespace cubicleos::libos
