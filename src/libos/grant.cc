#include "libos/grant.h"

namespace cubicleos::libos {

// --- GrantWindow ------------------------------------------------------

GrantWindow::GrantWindow(core::System &sys, const PeerSet &peers,
                         bool hot, Prestage prestage)
    : sys_(&sys), owner_(sys.currentCubicle()), hot_(hot),
      prestage_(prestage), peers_(peers)
{
    wid_ = sys.windowInit();
    if (hot_) {
        sys.windowSetHot(wid_);
        // Hot windows keep their ACL open across calls (§8): the
        // dedicated key sits in every peer's PKRU permanently.
        open(peers_);
    }
}

GrantWindow::~GrantWindow() { destroy(); }

void
GrantWindow::moveFrom(GrantWindow &other) noexcept
{
    sys_ = other.sys_;
    wid_ = other.wid_;
    owner_ = other.owner_;
    hot_ = other.hot_;
    prestage_ = other.prestage_;
    peers_ = other.peers_;
    opened_ = other.opened_;
    staged_ = other.staged_;
    other.sys_ = nullptr;
    other.wid_ = core::kInvalidWindow;
    other.staged_ = nullptr;
}

void
GrantWindow::stage(const void *ptr, std::size_t n)
{
    sys_->windowAdd(wid_, ptr, n);
    prestageNow();
}

void
GrantWindow::unstage(const void *ptr)
{
    sys_->windowRemove(wid_, ptr);
}

void
GrantWindow::open(const PeerSet &peers)
{
    for (core::Cid peer : peers) {
        sys_->windowOpen(wid_, peer);
        opened_.add(peer);
    }
    prestageNow();
}

void
GrantWindow::closeAll()
{
    sys_->windowCloseAll(wid_);
    opened_ = PeerSet{};
}

void
GrantWindow::prestageNow()
{
    // Persistent windows that stage per transfer (e.g. the RAMFS
    // per-peer block windows) re-enter here on every stage(); the
    // monitor re-retags already-granted pages idempotently, so the
    // cost stays one pkey_mprotect per staged run per peer.
    if (prestage_ == Prestage::kNone || hot_)
        return;
    const hw::Access acc = prestage_ == Prestage::kWrite
        ? hw::Access::kWrite
        : hw::Access::kRead;
    for (core::Cid peer : opened_)
        sys_->windowPrestage(wid_, peer, acc);
}

void
GrantWindow::restage(const void *ptr, std::size_t n)
{
    if (staged_ == ptr)
        return;
    if (staged_)
        sys_->windowRemove(wid_, staged_);
    sys_->windowAdd(wid_, ptr, n);
    staged_ = ptr;
    prestageNow();
}

void
GrantWindow::destroy() noexcept
{
    if (!sys_)
        return;
    core::System &sys = *sys_;
    const core::Cid owner = owner_;
    const core::Wid wid = wid_;
    sys_ = nullptr;
    wid_ = core::kInvalidWindow;
    staged_ = nullptr;
    try {
        // Only the owner may destroy its window; re-enter it when the
        // destructor runs in another cubicle's context (or none).
        if (sys.currentCubicle() == owner)
            sys.windowDestroy(wid);
        else
            sys.runAs(owner, [&] { sys.windowDestroy(wid); });
    } catch (...) {
        // Torn down outside any valid context (WindowError), or the
        // owner cubicle was destroyed under us (PeerFault): the
        // monitor already revoked and reclaimed the window during
        // destroyCubicle, so there is nothing left to undo.
    }
}

// --- Grant ------------------------------------------------------------

Grant::Grant(core::System &sys, GrantWindow &win, const PeerSet &peers,
             const void *buf, std::size_t n, hw::Access reclaim_access,
             Prestage prestage, const PeerSet &prestage_peers)
    : sys_(&sys), win_(&win), n_(n), reclaim_(reclaim_access)
{
    // Host-private buffers (outside the simulated machine) need no
    // window: they are unsimulated thread-private memory, consistent
    // with System::touch's policy.
    if (!sys.monitor().space().contains(buf))
        return;
    if (win.hot()) {
        // Pooled hot window: ACL already open, dedicated key already
        // in every peer's PKRU; just swap the staged range if the
        // buffer moved. Nothing to undo per call.
        win.restage(buf, n);
        return;
    }
    win.stage(buf, n);
    win.open(peers);
    buf_ = buf; // armed: destructor must undo
    if (prestage != Prestage::kNone) {
        const hw::Access acc = prestage == Prestage::kWrite
            ? hw::Access::kWrite
            : hw::Access::kRead;
        const PeerSet &targets =
            prestage_peers.size() ? prestage_peers : peers;
        for (core::Cid peer : targets)
            sys.windowPrestage(win.id(), peer, acc);
    }
}

void
Grant::release() noexcept
{
    if (!buf_)
        return;
    const void *buf = buf_;
    buf_ = nullptr;
    try {
        win_->unstage(buf);
        win_->closeAll();
        // Model the caller's next direct access to its buffer:
        // trap-and-map lazily retags the pages back to the owner.
        sys_->touch(buf, n_, reclaim_);
    } catch (...) {
        // Reclaim must not throw out of a destructor; a failed undo
        // surfaces later as an isolation fault on the real access.
    }
}

void
Grant::moveFrom(Grant &other) noexcept
{
    sys_ = other.sys_;
    win_ = other.win_;
    buf_ = other.buf_;
    n_ = other.n_;
    reclaim_ = other.reclaim_;
    other.buf_ = nullptr;
}

// --- XferArena --------------------------------------------------------

XferArena::XferArena(core::System &sys, std::size_t pages,
                     const PeerSet &peers, bool hot)
    : sys_(&sys)
{
    const core::Cid self = sys.currentCubicle();
    range_ = sys.monitor().allocPagesFor(self, pages,
                                         mem::PageType::kHeap);
    if (!range_.valid())
        throw core::OutOfMemory("XferArena staging pages");
    win_ = GrantWindow(sys, peers, hot);
    win_.stage(range_.ptr, range_.sizeBytes());
    if (!hot)
        win_.open(peers);
}

XferArena::~XferArena() { reset(); }

void
XferArena::reset() noexcept
{
    if (!sys_)
        return;
    win_.destroy();
    if (range_.valid()) {
        try {
            sys_->monitor().freePages(range_);
        } catch (...) {
            // Teardown after the allocator is gone; pages die with it.
        }
    }
    range_ = {};
    sys_ = nullptr;
    bump_ = 0;
}

void
XferArena::moveFrom(XferArena &other) noexcept
{
    sys_ = other.sys_;
    range_ = other.range_;
    win_ = std::move(other.win_);
    bump_ = other.bump_;
    other.sys_ = nullptr;
    other.range_ = {};
    other.bump_ = 0;
}

char *
XferArena::at(std::size_t off) const
{
    if (off >= size())
        throw core::WindowError("XferArena: offset " +
                                std::to_string(off) +
                                " outside the arena");
    return base() + off;
}

void *
XferArena::alloc(std::size_t bytes, std::size_t align)
{
    const std::size_t off = (bump_ + align - 1) & ~(align - 1);
    if (off + bytes > size())
        throw core::OutOfMemory("XferArena slot");
    bump_ = off + bytes;
    return base() + off;
}

void
XferArena::touchForWrite(std::size_t off, std::size_t n)
{
    sys_->touch(at(off), n, hw::Access::kWrite);
}

} // namespace cubicleos::libos
