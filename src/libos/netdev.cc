#include "libos/netdev.h"

#include <cstring>

namespace cubicleos::libos {

void
NetdevComponent::registerExports(core::Exporter &exp)
{
    // Transmit: copies the caller-windowed packet into the wire queue
    // ("DMA" out of the simulated machine).
    exp.fn<int(const uint8_t *, std::size_t)>(
        "netdev_tx", [this](const uint8_t *data, std::size_t len) {
            if (len == 0 || len > kMtu)
                return -1;
            sys()->touch(data, len, hw::Access::kRead);
            wire_->devTx(FrameChannel::Frame(data, data + len));
            ++tx_;
            return 0;
        });

    // Receive: copies the next wire frame into the caller's buffer.
    // Returns the frame length, 0 when the queue is empty, -1 when the
    // buffer is too small (frame is dropped, as real NICs do).
    exp.fn<int64_t(uint8_t *, std::size_t)>(
        "netdev_rx", [this](uint8_t *buf, std::size_t cap) -> int64_t {
            auto frame = wire_->devRx();
            if (!frame)
                return 0;
            ++rx_;
            if (frame->size() > cap)
                return -1;
            sys()->touch(buf, frame->size(), hw::Access::kWrite);
            std::memcpy(buf, frame->data(), frame->size());
            return static_cast<int64_t>(frame->size());
        });

    // Number of frames waiting (poll hint).
    exp.fn<std::size_t()>("netdev_rx_pending", [this] {
        return wire_->pendingToDevice();
    });
}

} // namespace cubicleos::libos
