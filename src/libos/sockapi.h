/**
 * @file
 * CubicleSockApi: application-side socket glue with window management.
 *
 * The socket-API half of the NGINX porting effort (paper: 390 SLOC):
 * brackets every lwip_send/lwip_recv with grant-layer window grants
 * over the application's buffers and reclaims them afterwards,
 * mirroring CubicleFileApi for the file path. The RAII Grant makes the
 * bracket exception-safe: a throwing callee can no longer leak an open
 * window.
 *
 * sendZero/zeroCopyDone expose the zero-copy sendfile path: the spans
 * passed to sendZero are backend-owned blocks already granted to the
 * LWIP cubicle (via vfs_borrow), so no window management happens here
 * — the pointer crosses by value and LWIP reads the block in place.
 *
 * The zero-copy calls ride a core::CallRing into LWIP: submitSendZero
 * and submitZeroCopyDone queue the call and flushRing() executes the
 * whole batch under ONE trampoline/PKRU switch (the io_uring shape).
 * The synchronous wrappers push-then-flush, so any pending queued
 * calls batch with them for free; results land exactly as if each
 * call had been made directly, and per-edge call accounting (Fig. 5)
 * is unchanged — only the switches are amortised.
 */

#ifndef CUBICLEOS_LIBOS_SOCKAPI_H_
#define CUBICLEOS_LIBOS_SOCKAPI_H_

#include "core/system.h"
#include "libos/grant.h"
#include "libos/tcpip.h"

namespace cubicleos::libos {

/** Socket API bound to cross-cubicle LWIP calls. */
class CubicleSockApi {
  public:
    /** Must be constructed while executing inside the app cubicle. */
    explicit CubicleSockApi(core::System &sys);
    ~CubicleSockApi() = default;

    // Every wrapper converts core::PeerFault — LWIP destroyed or
    // draining (DESIGN.md §15) — into kNetPeerFault instead of letting
    // the exception unwind the application: socket code predating the
    // lifecycle subsystem already handles negative NetErr returns.
    int socket() { return guarded<int>([&] { return socket_(); }); }
    int bind(int fd, uint16_t port)
    {
        return guarded<int>([&] { return bind_(fd, port); });
    }
    int listen(int fd, int backlog)
    {
        return guarded<int>([&] { return listen_(fd, backlog); });
    }
    int accept(int fd)
    {
        return guarded<int>([&] { return accept_(fd); });
    }
    int connect(int fd, uint32_t ip, uint16_t port)
    {
        return guarded<int>([&] { return connect_(fd, ip, port); });
    }
    int64_t send(int fd, const void *buf, std::size_t n);
    int64_t recv(int fd, void *buf, std::size_t n);
    int close(int fd) { return guarded<int>([&] { return close_(fd); }); }
    /** False (not an error) when the stack died: the peer is gone. */
    bool established(int fd)
    {
        return guarded<int>([&] { return established_(fd); }) > 0;
    }
    bool sendDrained(int fd)
    {
        return guarded<int>([&] { return sendDrained_(fd); }) > 0;
    }
    /** Drives the stack; batches with any pending submitted calls. */
    int64_t poll(uint64_t now_ns);

    /**
     * Queues a borrowed span for zero-copy transmission (all or
     * nothing): returns @p n once queued, kNetAgain when the send
     * buffer cannot take the whole span yet. The span must stay
     * granted to the LWIP cubicle until zeroCopyDone reports it.
     */
    int64_t sendZero(int fd, const void *span, std::size_t n);
    /**
     * Number of zero-copy spans fully acknowledged since the last
     * call, in FIFO queue order — the caller releases that many of its
     * oldest outstanding borrows.
     */
    int64_t zeroCopyDone(int fd);

    // --- Batched submission (io_uring shape) -------------------------
    // submit* queues the call without crossing into LWIP; flushRing()
    // executes every queued call under a single trampoline/PKRU
    // switch, in submission order. Each *out target must stay alive
    // until the flush and is written when its call executes. A full
    // ring self-flushes on the next submit. When LWIP dies mid-batch
    // the ring writes kNetPeerFault into every unexecuted call's *out
    // (the verdict word), so submitters see per-call failures, never
    // an exception.

    /** Queues sendZero(fd, span, n); result lands in @p out at flush. */
    void submitSendZero(int fd, const void *span, std::size_t n,
                        int64_t *out);
    /** Queues zeroCopyDone(fd); result lands in @p out at flush. */
    void submitZeroCopyDone(int fd, int64_t *out);
    /** Queues poll(now_ns); result lands in @p out at flush. */
    void submitPoll(uint64_t now_ns, int64_t *out);
    /** Executes the queued batch; returns the number of calls run. */
    std::size_t flushRing() { return ring_.flush(); }
    /** Calls queued but not yet flushed. */
    std::size_t ringPending() const { return ring_.pending(); }

  private:
    /**
     * Queues @p fn, flushing first if the ring is full. @p verdict
     * (usually the call's *out word) receives kNetPeerFault if the
     * batch dies before @p fn runs.
     */
    template <typename Fn>
    void enqueue(Fn &&fn, int64_t *verdict = nullptr)
    {
        if (!ring_.push(std::forward<Fn>(fn), verdict)) {
            ring_.flush();
            ring_.push(std::forward<Fn>(fn), verdict);
        }
    }

    /** Runs @p fn, mapping core::PeerFault to kNetPeerFault. */
    template <typename R, typename Fn>
    R guarded(Fn &&fn)
    {
        try {
            return fn();
        } catch (const core::PeerFault &) {
            return static_cast<R>(kNetPeerFault);
        }
    }

    core::System &sys_;
    core::Cid lwipCid_;
    PeerSet lwipPeer_;
    GrantWindow window_;
    core::CallRing ring_;

    core::CrossFn<int()> socket_;
    core::CrossFn<int(int, uint16_t)> bind_;
    core::CrossFn<int(int, int)> listen_;
    core::CrossFn<int(int)> accept_;
    core::CrossFn<int(int, uint32_t, uint16_t)> connect_;
    core::CrossFn<int64_t(int, const void *, std::size_t)> send_;
    core::CrossFn<int64_t(int, void *, std::size_t)> recv_;
    core::CrossFn<int(int)> close_;
    core::CrossFn<int(int)> established_;
    core::CrossFn<int(int)> sendDrained_;
    core::CrossFn<int64_t(uint64_t)> poll_;
    core::CrossFn<int64_t(int, const void *, std::size_t)> sendz_;
    core::CrossFn<int64_t(int)> zcDone_;
};

} // namespace cubicleos::libos

#endif // CUBICLEOS_LIBOS_SOCKAPI_H_
