/**
 * @file
 * CubicleSockApi: application-side socket glue with window management.
 *
 * The socket-API half of the NGINX porting effort (paper: 390 SLOC):
 * brackets every lwip_send/lwip_recv with window grants over the
 * application's buffers and reclaims them afterwards, mirroring
 * CubicleFileApi for the file path.
 */

#ifndef CUBICLEOS_LIBOS_SOCKAPI_H_
#define CUBICLEOS_LIBOS_SOCKAPI_H_

#include "core/system.h"
#include "libos/tcpip.h"

namespace cubicleos::libos {

/** Socket API bound to cross-cubicle LWIP calls. */
class CubicleSockApi {
  public:
    /** Must be constructed while executing inside the app cubicle. */
    explicit CubicleSockApi(core::System &sys);
    ~CubicleSockApi();

    int socket() { return socket_(); }
    int bind(int fd, uint16_t port) { return bind_(fd, port); }
    int listen(int fd, int backlog) { return listen_(fd, backlog); }
    int accept(int fd) { return accept_(fd); }
    int connect(int fd, uint32_t ip, uint16_t port)
    {
        return connect_(fd, ip, port);
    }
    int64_t send(int fd, const void *buf, std::size_t n);
    int64_t recv(int fd, void *buf, std::size_t n);
    int close(int fd) { return close_(fd); }
    bool established(int fd) { return established_(fd) != 0; }
    bool sendDrained(int fd) { return sendDrained_(fd) != 0; }
    int64_t poll(uint64_t now_ns) { return poll_(now_ns); }

  private:
    core::System &sys_;
    core::Cid lwipCid_;
    core::Wid window_ = core::kInvalidWindow;

    core::CrossFn<int()> socket_;
    core::CrossFn<int(int, uint16_t)> bind_;
    core::CrossFn<int(int, int)> listen_;
    core::CrossFn<int(int)> accept_;
    core::CrossFn<int(int, uint32_t, uint16_t)> connect_;
    core::CrossFn<int64_t(int, const void *, std::size_t)> send_;
    core::CrossFn<int64_t(int, void *, std::size_t)> recv_;
    core::CrossFn<int(int)> close_;
    core::CrossFn<int(int)> established_;
    core::CrossFn<int(int)> sendDrained_;
    core::CrossFn<int64_t(uint64_t)> poll_;
};

} // namespace cubicleos::libos

#endif // CUBICLEOS_LIBOS_SOCKAPI_H_
