/**
 * @file
 * The VFSCORE cubicle: virtual file system layer (Unikraft's vfscore).
 *
 * Maintains the mount table and per-process file descriptors, and
 * dispatches operations to file system backends through a callback
 * table. As in the paper (§5.2), backend callbacks are resolved as
 * dynamic symbols at mount time so every backend call crosses a
 * trampoline — this produces the VFSCORE→RAMFS edges of Fig. 5/Fig. 8.
 *
 * Pointer arguments (paths, I/O buffers) are passed through unchanged:
 * data moves zero-copy through windows opened by the original caller
 * for both VFSCORE and the backend (the nested-call rule, §5.6).
 */

#ifndef CUBICLEOS_LIBOS_VFSCORE_H_
#define CUBICLEOS_LIBOS_VFSCORE_H_

#include <string>
#include <vector>

#include "core/system.h"
#include "libos/libc.h"
#include "libos/vfs_types.h"

namespace cubicleos::libos {

/** The isolated VFS component. */
class VfsComponent : public core::Component {
  public:
    core::ComponentSpec spec() const override
    {
        core::ComponentSpec s;
        s.name = "vfscore";
        s.kind = core::CubicleKind::kIsolated;
        return s;
    }

    void registerExports(core::Exporter &exp) override;
    void init() override;

  private:
    /** Resolved backend callback table (one per mounted fs). */
    struct BackendOps {
        core::CrossFn<NodeId(const char *)> lookup;
        core::CrossFn<NodeId(const char *, uint32_t)> create;
        core::CrossFn<int(const char *)> remove;
        core::CrossFn<int(const char *)> mkdir;
        core::CrossFn<int64_t(NodeId, uint64_t, void *, std::size_t)>
            read;
        core::CrossFn<int64_t(NodeId, uint64_t, const void *,
                              std::size_t)>
            write;
        core::CrossFn<int(NodeId, uint64_t)> truncate;
        core::CrossFn<int(NodeId, VfsStat *)> getattr;
        core::CrossFn<int(const char *, uint64_t, VfsDirent *)> readdir;
        core::CrossFn<int(NodeId)> sync;
        /** Zero-copy span borrow/release (optional backend capability). */
        core::CrossFn<int(NodeId, uint64_t, core::Cid, std::size_t,
                          VfsSpan *)>
            borrow;
        core::CrossFn<int(NodeId, uint64_t)> release;
        std::string fsname;
        bool mounted = false;
        bool canBorrow = false;
    };

    /** Open file description. */
    struct FileDesc {
        bool used = false;
        NodeId node = kNoNode;
        uint64_t offset = 0;
        int flags = 0;
    };

    int doMount(const char *fsname);
    int doOpen(const char *path, int flags);
    int doClose(int fd);
    int64_t doRead(int fd, void *buf, std::size_t n);
    int64_t doWrite(int fd, const void *buf, std::size_t n);
    int64_t doPread(int fd, void *buf, std::size_t n, uint64_t off);
    int64_t doPwrite(int fd, const void *buf, std::size_t n,
                     uint64_t off);
    int64_t doLseek(int fd, int64_t off, int whence);
    int doFstat(int fd, VfsStat *st);
    int doStat(const char *path, VfsStat *st);
    int doUnlink(const char *path);
    int doMkdir(const char *path);
    int doReaddir(const char *path, uint64_t idx, VfsDirent *out);
    int doFtruncate(int fd, uint64_t size);
    int doFsync(int fd);
    int doBorrow(int fd, uint64_t off, core::Cid peer,
                 std::size_t max_len, VfsSpan *out);
    int doRelease(int fd, uint64_t token);

    FileDesc *fdAt(int fd);
    /** Validates and bounds a caller-supplied path (checked access). */
    bool checkPath(const char *path);

    BackendOps backend_;
    std::vector<FileDesc> fds_;
    Libc libc_;
};

} // namespace cubicleos::libos

#endif // CUBICLEOS_LIBOS_VFSCORE_H_
