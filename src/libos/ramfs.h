/**
 * @file
 * The RAMFS cubicle: an in-memory file system backend.
 *
 * File data lives in 4 KiB blocks allocated through cross-cubicle calls
 * into the ALLOC component (coarse-grained allocation, §6.4) and tagged
 * with RAMFS's key; reads and writes move data between these blocks and
 * caller-windowed buffers with the shared LIBC cubicle's checked memcpy
 * — the exact flow of the paper's Fig. 2/Fig. 4 walkthrough.
 *
 * The exported symbols form the backend callback table that VFSCORE
 * resolves at mount time ("ramfs_read", "ramfs_write", ...).
 */

#ifndef CUBICLEOS_LIBOS_RAMFS_H_
#define CUBICLEOS_LIBOS_RAMFS_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/system.h"
#include "libos/grant.h"
#include "libos/libc.h"
#include "libos/vfs_types.h"

namespace cubicleos::libos {

/** The isolated RAMFS backend component. */
class RamfsComponent : public core::Component {
  public:
    core::ComponentSpec spec() const override
    {
        core::ComponentSpec s;
        s.name = "ramfs";
        s.kind = core::CubicleKind::kIsolated;
        return s;
    }

    void registerExports(core::Exporter &exp) override;
    void init() override;

    /** Number of data blocks currently held (introspection). */
    std::size_t blocksHeld() const { return blocksHeld_; }

  private:
    static constexpr std::size_t kBlockSize = hw::kPageSize;
    /**
     * Borrow readahead cap: physically-contiguous blocks merged into
     * one span (and one staged window range). 8 blocks = 32 KiB, half
     * of LWIP's 64 KiB send buffer — sendZero is all-or-nothing, so a
     * full-buffer span would degenerate to stop-and-wait.
     */
    static constexpr std::size_t kReadAheadBlocks = 8;

    struct Node {
        uint32_t mode = 0;
        bool live = false;
        uint64_t size = 0;
        uint32_t pins = 0; ///< outstanding borrowed spans
        std::map<std::string, NodeId> children; ///< for directories
        std::vector<std::byte *> blocks;        ///< for files
    };

    /** One outstanding zero-copy span borrow. */
    struct Borrow {
        NodeId node = kNoNode;
        core::Cid peer = core::kNoCubicle;
        std::byte *block = nullptr;
    };

    NodeId doLookup(const char *path);
    NodeId doCreate(const char *path, uint32_t mode);
    int doRemove(const char *path);
    int doMkdir(const char *path);
    int64_t doRead(NodeId node, uint64_t off, void *buf, std::size_t n);
    int64_t doWrite(NodeId node, uint64_t off, const void *buf,
                    std::size_t n);
    int doTruncate(NodeId node, uint64_t size);
    int doGetattr(NodeId node, VfsStat *st);
    int doReaddir(const char *path, uint64_t idx, VfsDirent *out);
    int doBorrow(NodeId node, uint64_t off, core::Cid peer,
                 std::size_t max_len, VfsSpan *out);
    int doRelease(NodeId node, uint64_t token);

    /** Copies a caller path (checked access) into a local string. */
    bool readPath(const char *path, std::string *out);
    /** Splits into (parent node, leaf name); root has no leaf. */
    int walkParent(const std::string &path, NodeId *parent,
                   std::string *leaf);
    NodeId childOf(NodeId dir, const std::string &name);
    Node *nodeAt(NodeId id);

    std::byte *allocBlock();
    void freeBlock(std::byte *block);
    void dropBlocks(Node &node, std::size_t keep);

    std::vector<Node> nodes_;
    Libc libc_;
    core::CrossFn<void *(core::Cid, std::size_t)> allocPages_;
    core::CrossFn<void(void *, std::size_t)> freePages_;
    std::size_t blocksHeld_ = 0;

    /** One staged multi-block run, shared by same-start borrows. */
    struct StagedRun {
        uint32_t refs = 0;
        std::size_t blocks = 0; ///< run length actually staged
    };

    // Zero-copy borrow state: one persistent RAMFS-owned window per
    // borrowing peer, run staging refcounted per (peer, start block) so
    // repeated borrows of the same run share one staged range.
    std::map<core::Cid, GrantWindow> peerWins_;
    std::map<std::pair<core::Cid, std::byte *>, StagedRun> stagedRefs_;
    std::map<uint64_t, Borrow> borrows_;
    uint64_t nextToken_ = 1;
};

} // namespace cubicleos::libos

#endif // CUBICLEOS_LIBOS_RAMFS_H_
