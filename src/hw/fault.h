/**
 * @file
 * Memory fault types raised by the simulated machine.
 *
 * On real hardware these conditions are page faults delivered by the MMU
 * and the Memory Protection Keys (MPK) check; in this reproduction the same
 * conditions are produced by software checks in hw::AddressSpace::check().
 */

#ifndef CUBICLEOS_HW_FAULT_H_
#define CUBICLEOS_HW_FAULT_H_

#include <cstdint>
#include <stdexcept>
#include <string>

namespace cubicleos::hw {

/** Kind of memory access being performed. */
enum class Access : uint8_t {
    kRead,
    kWrite,
    kExec,
};

/** Reason a simulated access check failed. */
enum class FaultReason : uint8_t {
    kNotPresent,   ///< page is not mapped
    kPagePerm,     ///< page-table permission (R/W/X) violated
    kPkuRead,      ///< MPK access-disable bit set for the page's key
    kPkuWrite,     ///< MPK write-disable bit set for the page's key
    kExecDenied,   ///< execution attempted on a key with AD+WD set
                   ///< (the paper's proposed MPK hardware modification)
    kOutsideSpace, ///< address outside the simulated address space
};

/** Returns a human-readable name for a fault reason. */
const char *faultReasonName(FaultReason reason);

/** Returns a human-readable name for an access kind. */
const char *accessName(Access access);

/**
 * Description of a failed access, as the monitor's trap handler sees it.
 *
 * Mirrors the information a page-fault exception frame plus the PKRU
 * state would provide on MPK hardware.
 */
struct Fault {
    const void *addr = nullptr; ///< faulting address
    Access access = Access::kRead;
    FaultReason reason = FaultReason::kNotPresent;
    uint8_t pkey = 0;           ///< protection key of the faulting page

    /** Formats the fault for diagnostics. */
    std::string describe() const;
};

/**
 * Exception thrown when a fault cannot be resolved by the monitor,
 * i.e., an actual isolation violation. Equivalent to the process being
 * killed by SIGSEGV on real hardware.
 */
class CubicleFault : public std::runtime_error {
  public:
    explicit CubicleFault(const Fault &fault)
        : std::runtime_error(fault.describe()), fault_(fault) {}

    const Fault &fault() const { return fault_; }

  private:
    Fault fault_;
};

} // namespace cubicleos::hw

#endif // CUBICLEOS_HW_FAULT_H_
