/**
 * @file
 * Virtual cycle accounting for hardware-priced operations.
 *
 * The reproduction runs on a machine without Intel MPK, so operations whose
 * cost the paper cites from hardware (wrpkru, pkey_mprotect, page-fault
 * traps, kernel IPC entry) are charged to a virtual cycle clock instead.
 * Benchmarks report wall time plus modelled cycles at the paper's CPU
 * frequency (Xeon Silver 4210, 2.2 GHz), keeping relative costs faithful
 * and results deterministic in shape.
 */

#ifndef CUBICLEOS_HW_CYCLES_H_
#define CUBICLEOS_HW_CYCLES_H_

#include <atomic>
#include <cstdint>

namespace cubicleos::hw {

/** Cost constants (in cycles) for hardware-priced operations. */
namespace cost {

/** Paper's reference CPU frequency in GHz (Intel Xeon Silver 4210). */
inline constexpr double kCpuGhz = 2.2;

/** wrpkru: user-level PKRU update, ~20 cycles (paper §2.2, [43]). */
inline constexpr uint64_t kWrpkru = 20;

/** rdpkru: reading the PKRU register. */
inline constexpr uint64_t kRdpkru = 6;

/**
 * Assigning a protection key to a page (pkey_mprotect), >1,100 cycles in
 * Linux (paper §2.2). Charged per retag in the trap-and-map path.
 */
inline constexpr uint64_t kPkeyMprotect = 1100;

/**
 * Page-fault delivery to the user-level monitor and return. CubicleOS
 * handles window faults in user space: the fault traps to the host
 * kernel, is reflected to the monitor (signal/exception path), and
 * execution resumes after the retag — several thousand cycles on
 * Linux, far above the raw exception cost.
 */
inline constexpr uint64_t kFaultTrap = 3500;

/** Fixed bookkeeping of a cross-cubicle trampoline (excl. wrpkru). */
inline constexpr uint64_t kTrampoline = 30;

/** Switching between per-cubicle stacks inside a trampoline. */
inline constexpr uint64_t kStackSwitch = 20;

/** Host OS system call entry + exit (Linux baseline). */
inline constexpr uint64_t kSyscall = 600;

} // namespace cost

/**
 * A monotonically increasing virtual cycle clock.
 *
 * One instance is owned by each core::System. Charges use relaxed atomics:
 * the clock is an accumulator, not a synchronisation point.
 */
class CycleClock {
  public:
    CycleClock() : cycles_(0) {}

    /** Charges @p n virtual cycles. */
    void charge(uint64_t n) { cycles_.fetch_add(n, std::memory_order_relaxed); }

    /** Returns the accumulated virtual cycles. */
    uint64_t read() const { return cycles_.load(std::memory_order_relaxed); }

    /** Resets the clock to zero (benchmark harness use). */
    void reset() { cycles_.store(0, std::memory_order_relaxed); }

    /** Converts cycles to nanoseconds at the modelled CPU frequency. */
    static double toNanoseconds(uint64_t cycles)
    {
        return static_cast<double>(cycles) / cost::kCpuGhz;
    }

  private:
    std::atomic<uint64_t> cycles_;
};

} // namespace cubicleos::hw

#endif // CUBICLEOS_HW_CYCLES_H_
