/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * Used by workload generators (speedtest, siege client) and the shared
 * RANDOM cubicle. xorshift64* — fast, reproducible, and adequate for
 * workload shuffling; not for cryptographic use.
 */

#ifndef CUBICLEOS_HW_PRNG_H_
#define CUBICLEOS_HW_PRNG_H_

#include <cstdint>

namespace cubicleos::hw {

/** xorshift64* deterministic PRNG. */
class Prng {
  public:
    explicit Prng(uint64_t seed = 0x9E3779B97F4A7C15ull)
        : state_(seed ? seed : 1)
    {}

    /** Returns the next 64-bit pseudo-random value. */
    uint64_t next()
    {
        uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545F4914F6CDD1Dull;
    }

    /** Returns a value uniformly distributed in [0, bound). */
    uint64_t nextBelow(uint64_t bound)
    {
        return bound ? next() % bound : 0;
    }

    /** Returns a value uniformly distributed in [lo, hi]. */
    int64_t nextInRange(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            nextBelow(static_cast<uint64_t>(hi - lo + 1)));
    }

  private:
    uint64_t state_;
};

} // namespace cubicleos::hw

#endif // CUBICLEOS_HW_PRNG_H_
