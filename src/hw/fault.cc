#include "hw/fault.h"

#include <sstream>

namespace cubicleos::hw {

const char *
faultReasonName(FaultReason reason)
{
    switch (reason) {
      case FaultReason::kNotPresent: return "not-present";
      case FaultReason::kPagePerm: return "page-perm";
      case FaultReason::kPkuRead: return "pku-read";
      case FaultReason::kPkuWrite: return "pku-write";
      case FaultReason::kExecDenied: return "exec-denied";
      case FaultReason::kOutsideSpace: return "outside-space";
    }
    return "unknown";
}

const char *
accessName(Access access)
{
    switch (access) {
      case Access::kRead: return "read";
      case Access::kWrite: return "write";
      case Access::kExec: return "exec";
    }
    return "unknown";
}

std::string
Fault::describe() const
{
    std::ostringstream os;
    os << "memory protection fault: " << accessName(access) << " at "
       << addr << " (" << faultReasonName(reason)
       << ", pkey=" << static_cast<int>(pkey) << ")";
    return os.str();
}

} // namespace cubicleos::hw
