/**
 * @file
 * Simulated Intel Memory Protection Keys (MPK).
 *
 * Models the PKRU register with the exact x86 layout: for protection key
 * @c i, bit @c 2i is AD (access disable) and bit @c 2i+1 is WD (write
 * disable). 16 keys are available per address space, matching hardware.
 *
 * It also models the paper's proposed hardware modification (§5.5): when a
 * key has both read and write access disabled, execution on pages with
 * that key is disabled too. Stock MPK lacks tag-wide execute permissions;
 * CubicleOS's CFI argument relies on this "trivial" extension, so the
 * simulated hardware implements it (it can be switched off to model stock
 * MPK in tests).
 */

#ifndef CUBICLEOS_HW_MPK_H_
#define CUBICLEOS_HW_MPK_H_

#include <atomic>
#include <cstdint>
#include <optional>

#include "hw/fault.h"

namespace cubicleos::hw {

/** Number of physical protection keys supported by MPK hardware. */
inline constexpr int kNumPhysPkeys = 16;

/** Historical alias: the hardware tag count. */
inline constexpr int kNumPkeys = kNumPhysPkeys;

/**
 * First logical key id. Logical keys form a separate, unbounded id
 * space handed out by Mpk::allocLogicalKey(); they never reach the
 * PKRU (whose bit layout only covers the 16 physical tags) — the
 * monitor's key table maps them onto physical tags on demand.
 */
inline constexpr int kFirstLogicalKey = kNumPhysPkeys;

/**
 * The per-thread PKRU register.
 *
 * Value semantics; the runtime stores one per thread context and "writes"
 * it with Mpk-charged wrpkru operations.
 */
class Pkru {
  public:
    /** Constructs a PKRU denying access to every key. */
    static Pkru denyAll() { return Pkru(~0u); }

    /** Constructs a PKRU granting read+write on every key. */
    static Pkru allowAll() { return Pkru(0u); }

    Pkru() : value_(~0u) {}
    explicit Pkru(uint32_t raw) : value_(raw) {}

    /** Returns the raw 32-bit register value. */
    uint32_t raw() const { return value_; }

    /** True if pages tagged @p key may be read by this thread. */
    bool canRead(int key) const
    {
        return (value_ & adBit(key)) == 0;
    }

    /** True if pages tagged @p key may be written by this thread. */
    bool canWrite(int key) const
    {
        return (value_ & (adBit(key) | wdBit(key))) == 0;
    }

    /**
     * True if pages tagged @p key may be executed by this thread, under
     * the paper's modified-MPK semantics (AD+WD set disables execution).
     */
    bool canExecModified(int key) const
    {
        return canRead(key) || (value_ & wdBit(key)) == 0;
    }

    /** Grants read+write access to @p key. */
    void allow(int key)
    {
        value_ &= ~(adBit(key) | wdBit(key));
    }

    /** Grants read-only access to @p key. */
    void allowReadOnly(int key)
    {
        value_ &= ~adBit(key);
        value_ |= wdBit(key);
    }

    /** Revokes all access to @p key. */
    void deny(int key)
    {
        value_ |= adBit(key) | wdBit(key);
    }

    /**
     * Merges another register's grants into this one (bitwise: a
     * cleared AD/WD bit in either grants the access). Used to fold a
     * cubicle's hot-window keys into its base permission set.
     */
    void mergeAllow(const Pkru &other) { value_ &= other.value_; }

    bool operator==(const Pkru &other) const = default;

  private:
    static uint32_t adBit(int key) { return 1u << (2 * key); }
    static uint32_t wdBit(int key) { return 1u << (2 * key + 1); }

    uint32_t value_;
};

/**
 * An atomically updatable PKRU value.
 *
 * Used for state that is logically a PKRU register but shared between
 * threads — a cubicle's hot-window grant set, written by window
 * open/close under the monitor's window lock and read lock-free by
 * every permission switch (Monitor::pkruFor). Updates go through a
 * CAS loop over the 32-bit register image, so concurrent grant and
 * revoke operations both land.
 */
class AtomicPkru {
  public:
    AtomicPkru() : raw_(Pkru::denyAll().raw()) {}
    explicit AtomicPkru(const Pkru &p) : raw_(p.raw()) {}

    AtomicPkru(const AtomicPkru &) = delete;
    AtomicPkru &operator=(const AtomicPkru &) = delete;

    /** Snapshot of the current register image. */
    Pkru load() const
    {
        return Pkru(raw_.load(std::memory_order_relaxed));
    }

    /** Grants read+write on @p key. */
    void allow(int key)
    {
        update([key](Pkru &p) { p.allow(key); });
    }

    /** Revokes all access to @p key. */
    void deny(int key)
    {
        update([key](Pkru &p) { p.deny(key); });
    }

    /**
     * Resets the image to deny-all (cubicle teardown: every hot-window
     * grant this cubicle held dies with it).
     */
    void reset()
    {
        raw_.store(Pkru::denyAll().raw(), std::memory_order_relaxed);
    }

  private:
    template <typename F>
    void update(F fn)
    {
        uint32_t v = raw_.load(std::memory_order_relaxed);
        for (;;) {
            Pkru p(v);
            fn(p);
            if (raw_.compare_exchange_weak(v, p.raw(),
                                           std::memory_order_relaxed))
                return;
        }
    }

    std::atomic<uint32_t> raw_;
};

/**
 * MPK key allocator and access-check policy for one address space.
 *
 * Hands out the 16 hardware keys (key 0 is reserved for the trusted
 * monitor, mirroring the kernel's default-key convention) and evaluates
 * PKRU checks. Beyond the physical tags it also hands out *logical*
 * keys — an unbounded id space starting at kFirstLogicalKey that the
 * monitor's key table multiplexes onto physical tags with LRU eviction
 * (tag virtualisation, BULKHEAD-style; see DESIGN.md §14).
 */
class Mpk {
  public:
    /** Key reserved for the trusted monitor / TCB. */
    static constexpr int kMonitorKey = 0;

    /**
     * @param phys_budget caps physical-tag allocation below the
     *        hardware limit; used by tag-pressure tests to force
     *        eviction with as few as 4 tags. Clamped to
     *        [2, kNumPhysPkeys] (monitor key + at least one more).
     */
    explicit Mpk(bool modified_exec_semantics = true,
                 int phys_budget = kNumPhysPkeys)
        : nextKey_(1), nextLogicalKey_(kFirstLogicalKey),
          physBudget_(phys_budget < 2 ? 2
                      : phys_budget > kNumPhysPkeys ? kNumPhysPkeys
                                                    : phys_budget),
          modifiedExec_(modified_exec_semantics)
    {}

    /**
     * Allocates a fresh physical protection key.
     *
     * Thread-safe: the loader and windowSetHot allocate keys under
     * different locks of the monitor's hierarchy, so the counter
     * advances with a CAS instead of relying on external exclusion.
     *
     * @return the key, or -1 if the physical keys (as capped by the
     *         budget) are exhausted.
     */
    int allocKey()
    {
        int cur = nextKey_.load(std::memory_order_relaxed);
        while (cur < physBudget_) {
            if (nextKey_.compare_exchange_weak(
                    cur, cur + 1, std::memory_order_relaxed))
                return cur;
        }
        return -1;
    }

    /**
     * Allocates a fresh logical key (≥ kFirstLogicalKey, unbounded).
     * Logical keys never appear in a PKRU or a page-table entry; they
     * only identify a cubicle in the monitor's key table.
     */
    int allocLogicalKey()
    {
        return nextLogicalKey_.fetch_add(1, std::memory_order_relaxed);
    }

    /** True if @p key is a logical (virtualised) key id. */
    static constexpr bool isLogicalKey(int key)
    {
        return key >= kFirstLogicalKey;
    }

    /** Physical keys still allocatable under the budget. */
    int remainingKeys() const
    {
        const int next = nextKey_.load(std::memory_order_relaxed);
        return next < physBudget_ ? physBudget_ - next : 0;
    }

    /** Physical keys handed out so far (excluding the monitor key). */
    int allocatedKeys() const
    {
        return nextKey_.load(std::memory_order_relaxed) - 1;
    }

    /** Logical keys handed out so far. */
    int allocatedLogicalKeys() const
    {
        return nextLogicalKey_.load(std::memory_order_relaxed) -
               kFirstLogicalKey;
    }

    /** The physical-tag budget this allocator enforces. */
    int physBudget() const { return physBudget_; }

    /** True when the modified-MPK execute semantics are modelled. */
    bool modifiedExecSemantics() const { return modifiedExec_; }

    /**
     * Evaluates an MPK check for an access of kind @p access to a page
     * tagged @p pkey under register state @p pkru.
     *
     * @return the fault reason, or no value if the access is allowed.
     */
    std::optional<FaultReason>
    check(const Pkru &pkru, uint8_t pkey, Access access) const
    {
        switch (access) {
          case Access::kRead:
            if (!pkru.canRead(pkey))
                return FaultReason::kPkuRead;
            return std::nullopt;
          case Access::kWrite:
            if (!pkru.canWrite(pkey))
                return FaultReason::kPkuWrite;
            return std::nullopt;
          case Access::kExec:
            if (modifiedExec_ && !pkru.canExecModified(pkey))
                return FaultReason::kExecDenied;
            return std::nullopt;
        }
        return std::nullopt;
    }

  private:
    std::atomic<int> nextKey_;
    std::atomic<int> nextLogicalKey_;
    int physBudget_;
    bool modifiedExec_;
};

} // namespace cubicleos::hw

#endif // CUBICLEOS_HW_MPK_H_
