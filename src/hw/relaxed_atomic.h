/**
 * @file
 * A copyable relaxed-ordering atomic cell.
 *
 * The simulated machine state (page tags, page metadata, counters) is
 * mutated by concurrent threads the way real hardware state is: each
 * cell is independently word-atomic, with no ordering implied between
 * cells. RelaxedAtomic models exactly that — every load/store is a
 * std::memory_order_relaxed atomic access — while keeping the value
 * semantics (copy, assign, implicit conversion) of the plain field it
 * replaces, so `entry.pkey = k` and `if (entry.present)` read as
 * before but are data-race-free under TSan.
 *
 * Ordering between cells, where the runtime needs it, comes from the
 * lock hierarchy documented in core/monitor.h, not from these cells.
 */

#ifndef CUBICLEOS_HW_RELAXED_ATOMIC_H_
#define CUBICLEOS_HW_RELAXED_ATOMIC_H_

#include <atomic>

namespace cubicleos::hw {

template <typename T>
class RelaxedAtomic {
  public:
    RelaxedAtomic() : value_(T{}) {}
    RelaxedAtomic(T v) : value_(v) {} // NOLINT: implicit by design
    RelaxedAtomic(const RelaxedAtomic &other) : value_(other.load()) {}

    RelaxedAtomic &operator=(const RelaxedAtomic &other)
    {
        store(other.load());
        return *this;
    }
    RelaxedAtomic &operator=(T v)
    {
        store(v);
        return *this;
    }

    operator T() const { return load(); } // NOLINT: implicit by design

    T load() const { return value_.load(std::memory_order_relaxed); }
    void store(T v) { value_.store(v, std::memory_order_relaxed); }

    T fetchAdd(T n)
    {
        return value_.fetch_add(n, std::memory_order_relaxed);
    }

    T fetchOr(T bits)
    {
        return value_.fetch_or(bits, std::memory_order_relaxed);
    }

  private:
    std::atomic<T> value_;
};

} // namespace cubicleos::hw

#endif // CUBICLEOS_HW_RELAXED_ATOMIC_H_
