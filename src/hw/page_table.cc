#include "hw/page_table.h"

#include <cassert>
#include <cstdlib>
#include <cstring>

namespace cubicleos::hw {

AddressSpace::AddressSpace(std::size_t num_pages, CycleClock *clock)
    : memory_(static_cast<std::byte *>(
          std::aligned_alloc(kPageSize, num_pages * kPageSize))),
      entries_(num_pages),
      clock_(clock)
{
    assert(memory_ && "address-space allocation failed");
    std::memset(memory_.get(), 0, num_pages * kPageSize);
}

void
AddressSpace::map(std::size_t first, std::size_t n, uint8_t perms,
                  uint8_t pkey)
{
    assert(first + n <= entries_.size());
    for (std::size_t i = first; i < first + n; ++i) {
        entries_[i].present = true;
        entries_[i].perms = perms;
        entries_[i].pkey = pkey;
    }
}

void
AddressSpace::unmap(std::size_t first, std::size_t n)
{
    assert(first + n <= entries_.size());
    for (std::size_t i = first; i < first + n; ++i)
        entries_[i] = PageEntry{};
}

std::size_t
AddressSpace::setKeyRange(std::size_t first, std::size_t n, uint8_t pkey)
{
    assert(first + n <= entries_.size());
    for (std::size_t i = first; i < first + n; ++i)
        entries_[i].pkey = pkey; // atomic store; concurrent checks see
                                 // either the old or the new tag
    retags_.fetchAdd(1);
    retagPages_.fetchAdd(n);
    if (clock_)
        clock_->charge(cost::kPkeyMprotect);
    return n;
}

void
AddressSpace::setPerms(std::size_t first, std::size_t n, uint8_t perms)
{
    assert(first + n <= entries_.size());
    for (std::size_t i = first; i < first + n; ++i)
        entries_[i].perms = perms;
}

std::optional<Fault>
AddressSpace::check(const Mpk &mpk, const Pkru &pkru, const void *ptr,
                    std::size_t len, Access access) const
{
    if (len == 0)
        return std::nullopt;
    if (!contains(ptr)) {
        return Fault{ptr, access, FaultReason::kOutsideSpace, 0};
    }
    const auto *last =
        static_cast<const std::byte *>(ptr) + (len - 1);
    if (!contains(last)) {
        return Fault{last, access, FaultReason::kOutsideSpace, 0};
    }

    const std::size_t first_page = pageIndexOf(ptr);
    const std::size_t last_page = pageIndexOf(last);
    const uint8_t need = access == Access::kRead ? kPermRead
        : access == Access::kWrite ? kPermWrite : kPermExec;

    for (std::size_t i = first_page; i <= last_page; ++i) {
        const PageEntry &pe = entries_[i];
        const void *page_addr =
            memory_.get() + i * kPageSize;
        const void *fault_addr = i == first_page ? ptr : page_addr;
        if (!pe.present) {
            return Fault{fault_addr, access, FaultReason::kNotPresent,
                         pe.pkey};
        }
        if ((pe.perms & need) == 0) {
            return Fault{fault_addr, access, FaultReason::kPagePerm,
                         pe.pkey};
        }
        if (auto reason = mpk.check(pkru, pe.pkey, access)) {
            return Fault{fault_addr, access, *reason, pe.pkey};
        }
    }
    return std::nullopt;
}

} // namespace cubicleos::hw
