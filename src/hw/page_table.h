/**
 * @file
 * Simulated physical/virtual address space with a per-page table.
 *
 * All cubicle memory (code images, globals, stacks, heaps) is carved out
 * of one contiguous AddressSpace, so page lookups are O(1) array indexing
 * — mirroring both MMU behaviour and CubicleOS's O(1) page metadata maps
 * (paper §5.3).
 *
 * The page table holds, per page: presence, R/W/X permissions, and the
 * 4-bit MPK protection key. Access checks combine page permissions with
 * the PKRU state, exactly as the hardware would.
 */

#ifndef CUBICLEOS_HW_PAGE_TABLE_H_
#define CUBICLEOS_HW_PAGE_TABLE_H_

#include <cstddef>
#include <cstdlib>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "hw/cycles.h"
#include "hw/fault.h"
#include "hw/mpk.h"
#include "hw/relaxed_atomic.h"

namespace cubicleos::hw {

/** Page size of the simulated machine (x86-64 base pages). */
inline constexpr std::size_t kPageSize = 4096;
/** log2(kPageSize). */
inline constexpr std::size_t kPageShift = 12;

/** Rounds @p n up to a whole number of pages. */
constexpr std::size_t
pagesFor(std::size_t n)
{
    return (n + kPageSize - 1) / kPageSize;
}

/** Page-table permission bits. */
enum PagePerm : uint8_t {
    kPermNone = 0,
    kPermRead = 1 << 0,
    kPermWrite = 1 << 1,
    kPermExec = 1 << 2,
};

/**
 * One page-table entry of the simulated MMU.
 *
 * Fields are individually word-atomic (RelaxedAtomic), mirroring how
 * hardware page-table walks race benignly with PTE updates: a checker
 * thread observes either the old or the new tag, never a torn value.
 * This is what lets the monitor's trap-and-map handler commit a grant
 * (setKey) under a shared lock while other threads run access checks
 * with no lock at all.
 */
struct PageEntry {
    RelaxedAtomic<bool> present = false;
    RelaxedAtomic<uint8_t> perms = kPermNone;
    RelaxedAtomic<uint8_t> pkey = Mpk::kMonitorKey;
};

/**
 * A contiguous simulated address space with page-granular protection.
 *
 * Pointers handed out by the runtime are real host pointers into the
 * backing buffer, so components run at native speed on their own data;
 * protection is evaluated by check() at the instrumentation points.
 */
class AddressSpace {
  public:
    /**
     * Creates an address space of @p num_pages pages.
     *
     * @param clock cycle clock charged for priced operations (setKey).
     */
    AddressSpace(std::size_t num_pages, CycleClock *clock);

    AddressSpace(const AddressSpace &) = delete;
    AddressSpace &operator=(const AddressSpace &) = delete;

    std::byte *base() { return memory_.get(); }
    const std::byte *base() const { return memory_.get(); }
    std::size_t numPages() const { return entries_.size(); }
    std::size_t sizeBytes() const { return numPages() * kPageSize; }

    /** True if @p ptr points into the simulated space. */
    bool contains(const void *ptr) const
    {
        auto *p = static_cast<const std::byte *>(ptr);
        return p >= memory_.get() && p < memory_.get() + sizeBytes();
    }

    /** Returns the page index of @p ptr; @p ptr must be inside. */
    std::size_t pageIndexOf(const void *ptr) const
    {
        return static_cast<std::size_t>(
            static_cast<const std::byte *>(ptr) - memory_.get())
            >> kPageShift;
    }

    /** Returns a pointer to the first byte of page @p idx. */
    std::byte *pageAt(std::size_t idx)
    {
        return memory_.get() + idx * kPageSize;
    }

    PageEntry &entryAt(std::size_t idx) { return entries_[idx]; }
    const PageEntry &entryAt(std::size_t idx) const { return entries_[idx]; }

    /** Returns the entry for @p ptr, or nullptr if outside the space. */
    const PageEntry *entryFor(const void *ptr) const
    {
        if (!contains(ptr))
            return nullptr;
        return &entries_[pageIndexOf(ptr)];
    }

    /** Maps @p n pages starting at @p first with @p perms and @p pkey. */
    void map(std::size_t first, std::size_t n, uint8_t perms, uint8_t pkey);

    /** Unmaps @p n pages starting at @p first. */
    void unmap(std::size_t first, std::size_t n);

    /**
     * Reassigns the protection key on a page range.
     *
     * Models pkey_mprotect: charges cost::kPkeyMprotect per *call*
     * (the paper's >1,100-cycle kernel path), however many pages the
     * range covers — which is exactly why range-granular retagging
     * amortises the trap-and-map cost. The per-page tag write is an
     * atomic store, so a retag may commit concurrently with other
     * threads' access checks and with other retags: the last writer
     * wins, exactly like racing pkey_mprotect calls on real hardware.
     * Callers need no exclusive lock around setKeyRange.
     *
     * @return the number of pages retagged (== @p n).
     */
    std::size_t setKeyRange(std::size_t first, std::size_t n,
                            uint8_t pkey);

    /** Single-call alias kept for existing call sites. */
    void setKey(std::size_t first, std::size_t n, uint8_t pkey)
    {
        setKeyRange(first, n, pkey);
    }

    /** Changes the page-table permissions on a range (no key change). */
    void setPerms(std::size_t first, std::size_t n, uint8_t perms);

    /**
     * Evaluates an access of @p len bytes at @p ptr under @p pkru.
     *
     * Checks every page the range touches; returns the first fault, or
     * no value if the whole access is allowed. This is the software
     * stand-in for the MMU+MPK check on a real load/store.
     */
    std::optional<Fault> check(const Mpk &mpk, const Pkru &pkru,
                               const void *ptr, std::size_t len,
                               Access access) const;

    /** Number of setKeyRange invocations (retag statistics). */
    uint64_t retagCount() const { return retags_; }

    /** Total pages covered across all setKeyRange invocations. */
    uint64_t retagPageCount() const { return retagPages_; }

  private:
    struct FreeDeleter {
        void operator()(std::byte *p) const { std::free(p); }
    };

    /** Page-aligned backing memory (aligned_alloc). */
    std::unique_ptr<std::byte[], FreeDeleter> memory_;
    std::vector<PageEntry> entries_;
    CycleClock *clock_;
    RelaxedAtomic<uint64_t> retags_ = uint64_t{0};
    RelaxedAtomic<uint64_t> retagPages_ = uint64_t{0};
};

} // namespace cubicleos::hw

#endif // CUBICLEOS_HW_PAGE_TABLE_H_
