/**
 * @file
 * The NGINX stand-in: a static-file HTTP/1.1 server component.
 *
 * Runs as the application cubicle of the paper's Fig. 5 deployment:
 * accepts connections through the LWIP cubicle (CubicleSockApi),
 * serves files from RAMFS through VFSCORE (CubicleFileApi), with all
 * buffers in its own cubicle memory and window-managed per call.
 *
 * Non-blocking design: nginx_poll() advances every connection's state
 * machine one step, exactly like an event-loop web server.
 */

#ifndef CUBICLEOS_APPS_HTTPD_HTTPD_H_
#define CUBICLEOS_APPS_HTTPD_HTTPD_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/codescan.h"
#include "core/system.h"
#include "libos/sockapi.h"
#include "libos/ukapi.h"

namespace cubicleos::httpd {

/**
 * Builds the code image a tenant cubicle ships: benign synthesised
 * text sealed by a builder-declared CFI entry table. Tenants load at
 * scale (dozens per deployment), so unlike the singleton deployments
 * they must pass the audit's per-cubicle unresolved-site gate for
 * every seed the load order hands them — the declared address-taken
 * table resolves the stream's residual naked indirect calls.
 */
inline void
attachTenantImage(core::ComponentSpec &s)
{
    core::verifier::EntryTable table;
    // Fixed seed: every tenant ships the same hardened build, so the
    // verifier's image-hash memoisation kicks in across the fleet.
    s.image = core::makeCfiImage(4096, 0x7e4a, &table);
    s.indirectTables = {table};
}

/** Server statistics. */
struct HttpdStats {
    uint64_t requests = 0;
    uint64_t bytesSent = 0;
    uint64_t errors = 0;
};

/** The isolated NGINX application component. */
class NginxComponent : public core::Component {
  public:
    /**
     * @param sendfile when set, file bodies are served through the
     * zero-copy path: spans of up to kSendSpan contiguous bytes are
     * borrowed from the backend (vfs_borrow with readahead), queued by
     * reference into the network stack (sendZero) and released once
     * acknowledged — no payload byte is copied between the RAMFS
     * blocks and the TCP segments. Completion reaping and span
     * queueing for one round share a single batched trip into LWIP
     * (the submission ring). When clear, bodies take the classic
     * pread-into-buffer-then-send path.
     */
    explicit NginxComponent(uint16_t port = 80, bool sendfile = false)
        : port_(port), sendfile_(sendfile)
    {
    }

    /**
     * Multi-tenant variant: a named server instance. @p docroot is
     * prefixed to every request path, giving each tenant a private
     * subtree of the shared RAMFS; @p log_to, when non-empty, names a
     * per-tenant log cubicle that receives one cross-call per
     * completed request (the second member of the tenant's cubicle
     * group).
     */
    NginxComponent(std::string name, uint16_t port, bool sendfile,
                   std::string docroot, std::string log_to = "")
        : port_(port), sendfile_(sendfile), name_(std::move(name)),
          docroot_(std::move(docroot)), logTo_(std::move(log_to))
    {
    }

    core::ComponentSpec spec() const override
    {
        core::ComponentSpec s;
        s.name = name_;
        s.kind = core::CubicleKind::kIsolated;
        s.stackPages = 32;
        if (!docroot_.empty()) // multi-tenant instance
            attachTenantImage(s);
        return s;
    }

    void registerExports(core::Exporter &exp) override;
    void init() override;

    /**
     * Creates a served file of @p size deterministic bytes (host-side
     * test/bench setup; runs inside this cubicle).
     */
    void createFile(const std::string &path, std::size_t size);

    /** Creates a directory (host-side setup; runs inside the cubicle). */
    void makeDir(const std::string &path);

    const HttpdStats &stats() const { return stats_; }

  private:
    /**
     * Copy-path staging chunk. 32 KiB (half the 64 KiB socket send
     * buffer) amortises the per-chunk grant bracket — stage, open,
     * cross-call, remove, reclaim — over 8 pages that the monitor
     * retags in a single range-granular trap each way.
     */
    static constexpr std::size_t kIoChunk = 32768;
    /**
     * Zero-copy borrow cap: half of LWIP's 64 KiB send buffer, so an
     * all-or-nothing sendZero of one span can always overlap the ACK
     * wait of the previous one instead of stop-and-waiting.
     */
    static constexpr std::size_t kSendSpan = 32768;

    struct Conn {
        int fd = -1;
        char *buf = nullptr; ///< per-connection cubicle I/O buffer
        enum State { kReadRequest, kSendHeader, kSendBody, kClosing }
            state = kReadRequest;
        std::string request;
        std::string header;
        std::size_t headerSent = 0;
        int fileFd = -1;
        uint64_t fileSize = 0;
        uint64_t fileOff = 0;
        std::size_t chunkLen = 0; ///< bytes of body staged in buffer
        std::size_t chunkSent = 0;
        // Zero-copy sendfile state.
        libos::VfsSpan span;     ///< borrowed but not yet queued span
        bool spanPending = false;
        std::deque<uint64_t> zcTokens; ///< queued spans awaiting ACK
    };

    int64_t poll(uint64_t now_ns);
    void progress(Conn &conn);
    void handleRequest(Conn &conn);
    /**
     * Drops a connection whose peer cubicle died mid-request
     * (kNetPeerFault / kErrPeerFault): releases whatever this side
     * still holds, counts one error, and keeps the server loop
     * running — other connections and future accepts are unaffected.
     */
    void dropConn(Conn &conn);
    /** Releases every span the stack has fully acknowledged. */
    void releaseCompleted(Conn &conn);
    /** Releases @p done oldest acknowledged spans (FIFO order). */
    void releaseTokens(Conn &conn, int64_t done);

    uint16_t port_;
    bool sendfile_;
    std::string name_ = "nginx";
    std::string docroot_;
    std::string logTo_;
    core::CrossFn<int64_t(int64_t)> logFn_;
    uint64_t loggedRequests_ = 0;
    core::Cid lwipCid_ = core::kNoCubicle;
    int listenFd_ = -1;
    std::unique_ptr<libos::CubicleSockApi> sock_;
    std::unique_ptr<libos::CubicleFileApi> fs_;
    char *ioBuf_ = nullptr; ///< cubicle-owned I/O staging buffer
    std::vector<Conn> conns_;
    HttpdStats stats_;
};

/**
 * Per-tenant request log: the second cubicle of a tenant's group.
 *
 * Keeps its running totals in its own cubicle memory, so a parked
 * tenant's accounting state lives behind the parked tag and the
 * log_requests cross-call exercises the full fault-back-in path under
 * tag pressure (DESIGN.md §14).
 */
class TenantLogComponent : public core::Component {
  public:
    explicit TenantLogComponent(std::string name)
        : name_(std::move(name))
    {
    }

    core::ComponentSpec spec() const override
    {
        core::ComponentSpec s;
        s.name = name_;
        s.kind = core::CubicleKind::kIsolated;
        s.stackPages = 4;
        attachTenantImage(s);
        return s;
    }

    void registerExports(core::Exporter &exp) override
    {
        exp.fn<int64_t(int64_t)>("log_requests", [this](int64_t n) {
            sys()->touch(counters_, sizeof(uint64_t) * 2,
                         hw::Access::kWrite);
            counters_[0] += static_cast<uint64_t>(n);
            counters_[1] += 1;
            return static_cast<int64_t>(counters_[0]);
        });
    }

    void init() override
    {
        counters_ = static_cast<uint64_t *>(
            sys()->heapAlloc(sizeof(uint64_t) * 2));
        counters_[0] = counters_[1] = 0;
    }

    void teardown() override
    {
        // The pre-crash counters died with the old heap; init() will
        // allocate fresh ones in the restarted cubicle.
        counters_ = nullptr;
    }

    /** Total requests this tenant has served (host-side readback). */
    uint64_t totalRequests() const { return counters_ ? counters_[0] : 0; }

  private:
    std::string name_;
    uint64_t *counters_ = nullptr; ///< cubicle memory: {requests, batches}
};

} // namespace cubicleos::httpd

#endif // CUBICLEOS_APPS_HTTPD_HTTPD_H_
