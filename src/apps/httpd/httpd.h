/**
 * @file
 * The NGINX stand-in: a static-file HTTP/1.1 server component.
 *
 * Runs as the application cubicle of the paper's Fig. 5 deployment:
 * accepts connections through the LWIP cubicle (CubicleSockApi),
 * serves files from RAMFS through VFSCORE (CubicleFileApi), with all
 * buffers in its own cubicle memory and window-managed per call.
 *
 * Non-blocking design: nginx_poll() advances every connection's state
 * machine one step, exactly like an event-loop web server.
 */

#ifndef CUBICLEOS_APPS_HTTPD_HTTPD_H_
#define CUBICLEOS_APPS_HTTPD_HTTPD_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/system.h"
#include "libos/sockapi.h"
#include "libos/ukapi.h"

namespace cubicleos::httpd {

/** Server statistics. */
struct HttpdStats {
    uint64_t requests = 0;
    uint64_t bytesSent = 0;
    uint64_t errors = 0;
};

/** The isolated NGINX application component. */
class NginxComponent : public core::Component {
  public:
    /**
     * @param sendfile when set, file bodies are served through the
     * zero-copy path: spans of up to kSendSpan contiguous bytes are
     * borrowed from the backend (vfs_borrow with readahead), queued by
     * reference into the network stack (sendZero) and released once
     * acknowledged — no payload byte is copied between the RAMFS
     * blocks and the TCP segments. Completion reaping and span
     * queueing for one round share a single batched trip into LWIP
     * (the submission ring). When clear, bodies take the classic
     * pread-into-buffer-then-send path.
     */
    explicit NginxComponent(uint16_t port = 80, bool sendfile = false)
        : port_(port), sendfile_(sendfile)
    {
    }

    core::ComponentSpec spec() const override
    {
        core::ComponentSpec s;
        s.name = "nginx";
        s.kind = core::CubicleKind::kIsolated;
        s.stackPages = 32;
        return s;
    }

    void registerExports(core::Exporter &exp) override;
    void init() override;

    /**
     * Creates a served file of @p size deterministic bytes (host-side
     * test/bench setup; runs inside this cubicle).
     */
    void createFile(const std::string &path, std::size_t size);

    const HttpdStats &stats() const { return stats_; }

  private:
    /**
     * Copy-path staging chunk. 32 KiB (half the 64 KiB socket send
     * buffer) amortises the per-chunk grant bracket — stage, open,
     * cross-call, remove, reclaim — over 8 pages that the monitor
     * retags in a single range-granular trap each way.
     */
    static constexpr std::size_t kIoChunk = 32768;
    /**
     * Zero-copy borrow cap: half of LWIP's 64 KiB send buffer, so an
     * all-or-nothing sendZero of one span can always overlap the ACK
     * wait of the previous one instead of stop-and-waiting.
     */
    static constexpr std::size_t kSendSpan = 32768;

    struct Conn {
        int fd = -1;
        char *buf = nullptr; ///< per-connection cubicle I/O buffer
        enum State { kReadRequest, kSendHeader, kSendBody, kClosing }
            state = kReadRequest;
        std::string request;
        std::string header;
        std::size_t headerSent = 0;
        int fileFd = -1;
        uint64_t fileSize = 0;
        uint64_t fileOff = 0;
        std::size_t chunkLen = 0; ///< bytes of body staged in buffer
        std::size_t chunkSent = 0;
        // Zero-copy sendfile state.
        libos::VfsSpan span;     ///< borrowed but not yet queued span
        bool spanPending = false;
        std::deque<uint64_t> zcTokens; ///< queued spans awaiting ACK
    };

    int64_t poll(uint64_t now_ns);
    void progress(Conn &conn);
    void handleRequest(Conn &conn);
    /** Releases every span the stack has fully acknowledged. */
    void releaseCompleted(Conn &conn);
    /** Releases @p done oldest acknowledged spans (FIFO order). */
    void releaseTokens(Conn &conn, int64_t done);

    uint16_t port_;
    bool sendfile_;
    core::Cid lwipCid_ = core::kNoCubicle;
    int listenFd_ = -1;
    std::unique_ptr<libos::CubicleSockApi> sock_;
    std::unique_ptr<libos::CubicleFileApi> fs_;
    char *ioBuf_ = nullptr; ///< cubicle-owned I/O staging buffer
    std::vector<Conn> conns_;
    HttpdStats stats_;
};

} // namespace cubicleos::httpd

#endif // CUBICLEOS_APPS_HTTPD_HTTPD_H_
