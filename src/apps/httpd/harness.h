/**
 * @file
 * HTTP harness: boots the full NGINX deployment (Fig. 5's eight
 * isolated cubicles) and drives it with a host-side TCP client — the
 * siege stand-in of the paper's §6.3 experiment.
 *
 * Reported latency = real wall time of the simulation + modelled
 * hardware cycles (wire latency, MPK costs) at the paper's CPU
 * frequency.
 */

#ifndef CUBICLEOS_APPS_HTTPD_HARNESS_H_
#define CUBICLEOS_APPS_HTTPD_HARNESS_H_

#include <memory>
#include <string>

#include "apps/httpd/httpd.h"
#include "libos/netdev.h"
#include "libos/stack.h"
#include "libos/tcpip.h"

namespace cubicleos::httpd {

/** One fetched response. */
struct FetchResult {
    int status = 0;
    std::size_t bodyBytes = 0;
    std::string body;     ///< response payload (byte-identity checks)
    double wallMs = 0;    ///< real time spent simulating
    double modelMs = 0;   ///< modelled hardware time
    double latencyMs() const { return wallMs + modelMs; }
};

/** Boots and drives the networked NGINX deployment. */
class HttpHarness {
  public:
    /**
     * @param mode isolation mode (Unikraft baseline vs CubicleOS)
     * @param num_pages simulated memory size in pages
     * @param request_base_cycles fixed per-request cost modelling the
     *        external client and network round trips that dominate
     *        small-file latency in the paper (≈5 ms at 2.2 GHz)
     * @param sendfile serve file bodies through the zero-copy path
     */
    explicit HttpHarness(core::IsolationMode mode,
                         std::size_t num_pages = 32768,
                         uint64_t request_base_cycles = 11'000'000,
                         bool sendfile = false);
    ~HttpHarness();

    /** Creates a served file with deterministic contents. */
    void createFile(const std::string &path, std::size_t size);

    /** Fetches @p path over a fresh connection; measures latency. */
    FetchResult fetch(const std::string &path);

    core::System &sys() { return *sys_; }
    NginxComponent &nginx() { return *nginx_; }
    libos::FrameChannel &wire() { return *wire_; }

  private:
    void pumpOnce();

    std::unique_ptr<core::System> sys_;
    std::unique_ptr<libos::FrameChannel> wire_;
    std::unique_ptr<libos::TcpIpStack> client_;
    core::CrossFn<int64_t(uint64_t)> nginxPoll_;
    NginxComponent *nginx_ = nullptr;
    uint64_t requestBaseCycles_;
    uint64_t now_ = 0;
    core::Cid nginxCid_ = core::kNoCubicle;
};

} // namespace cubicleos::httpd

#endif // CUBICLEOS_APPS_HTTPD_HARNESS_H_
