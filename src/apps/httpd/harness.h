/**
 * @file
 * HTTP harness: boots the full NGINX deployment (Fig. 5's eight
 * isolated cubicles) and drives it with a host-side TCP client — the
 * siege stand-in of the paper's §6.3 experiment.
 *
 * Reported latency = real wall time of the simulation + modelled
 * hardware cycles (wire latency, MPK costs) at the paper's CPU
 * frequency.
 */

#ifndef CUBICLEOS_APPS_HTTPD_HARNESS_H_
#define CUBICLEOS_APPS_HTTPD_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "apps/httpd/httpd.h"
#include "libos/netdev.h"
#include "libos/stack.h"
#include "libos/tcpip.h"

namespace cubicleos::httpd {

/** One fetched response. */
struct FetchResult {
    int status = 0;
    std::size_t bodyBytes = 0;
    std::string body;     ///< response payload (byte-identity checks)
    double wallMs = 0;    ///< real time spent simulating
    double modelMs = 0;   ///< modelled hardware time
    double latencyMs() const { return wallMs + modelMs; }
};

/** Boots and drives the networked NGINX deployment. */
class HttpHarness {
  public:
    /**
     * @param mode isolation mode (Unikraft baseline vs CubicleOS)
     * @param num_pages simulated memory size in pages
     * @param request_base_cycles fixed per-request cost modelling the
     *        external client and network round trips that dominate
     *        small-file latency in the paper (≈5 ms at 2.2 GHz)
     * @param sendfile serve file bodies through the zero-copy path
     */
    explicit HttpHarness(core::IsolationMode mode,
                         std::size_t num_pages = 32768,
                         uint64_t request_base_cycles = 11'000'000,
                         bool sendfile = false);
    ~HttpHarness();

    /** Creates a served file with deterministic contents. */
    void createFile(const std::string &path, std::size_t size);

    /** Fetches @p path over a fresh connection; measures latency. */
    FetchResult fetch(const std::string &path);

    core::System &sys() { return *sys_; }
    NginxComponent &nginx() { return *nginx_; }
    libos::FrameChannel &wire() { return *wire_; }

  private:
    void pumpOnce();

    std::unique_ptr<core::System> sys_;
    std::unique_ptr<libos::FrameChannel> wire_;
    std::unique_ptr<libos::TcpIpStack> client_;
    core::CrossFn<int64_t(uint64_t)> nginxPoll_;
    NginxComponent *nginx_ = nullptr;
    uint64_t requestBaseCycles_;
    uint64_t now_ = 0;
    core::Cid nginxCid_ = core::kNoCubicle;
};

/**
 * Multi-tenant HTTP harness: one networked library-OS stack serving N
 * independent tenants, each a cubicle group of its own — an NGINX
 * instance on port 8000+i plus a private request-log cubicle. With
 * tag virtualisation the deployment scales far past the 16 MPK keys:
 * parked tenants keep full isolation behind the parked tag and fault
 * back in when a request arrives (DESIGN.md §14).
 */
class MultiTenantHarness {
  public:
    /**
     * @param tenants number of tenant groups (2 cubicles each)
     * @param mode isolation mode
     * @param num_pages simulated memory size in pages
     * @param phys_budget physical MPK tags available (test knob)
     * @param dynamic_tags size of the monitor's dynamic tag pool
     * @param request_base_cycles per-request fixed client/wire cost
     */
    MultiTenantHarness(int tenants, core::IsolationMode mode,
                       std::size_t num_pages = 65536,
                       int phys_budget = hw::kNumPhysPkeys,
                       std::size_t dynamic_tags = 4,
                       uint64_t request_base_cycles = 11'000'000);
    ~MultiTenantHarness();

    /** Creates a file in tenant @p t's private docroot subtree. */
    void createFile(int t, const std::string &path, std::size_t size);

    /** Fetches @p path from tenant @p t over a fresh connection. */
    FetchResult fetch(int t, const std::string &path);

    int tenants() const { return tenants_; }
    uint16_t portOf(int t) const
    {
        return static_cast<uint16_t>(8000 + t);
    }
    core::System &sys() { return *sys_; }
    NginxComponent &nginx(int t) { return *servers_[t]; }
    const TenantLogComponent &tenantLog(int t) const
    {
        return *logs_[t];
    }

  private:
    void pumpOnce(int t);

    int tenants_;
    std::unique_ptr<core::System> sys_;
    std::unique_ptr<libos::FrameChannel> wire_;
    std::unique_ptr<libos::TcpIpStack> client_;
    std::vector<NginxComponent *> servers_;
    std::vector<TenantLogComponent *> logs_;
    std::vector<core::CrossFn<int64_t(uint64_t)>> polls_;
    std::vector<core::Cid> cids_;
    uint64_t requestBaseCycles_;
    uint64_t now_ = 0;
};

} // namespace cubicleos::httpd

#endif // CUBICLEOS_APPS_HTTPD_HARNESS_H_
