#include "apps/httpd/harness.h"

#include <chrono>
#include <cstring>

namespace cubicleos::httpd {

HttpHarness::HttpHarness(core::IsolationMode mode,
                         std::size_t num_pages,
                         uint64_t request_base_cycles, bool sendfile)
    : requestBaseCycles_(request_base_cycles)
{
    core::SystemConfig cfg;
    cfg.numPages = num_pages;
    cfg.mode = mode;
    sys_ = std::make_unique<core::System>(cfg);
    wire_ = std::make_unique<libos::FrameChannel>(&sys_->clock());

    libos::StackOptions opts;
    opts.withNet = true;
    opts.wire = wire_.get();
    libos::addLibosComponents(*sys_, opts);
    nginx_ = static_cast<NginxComponent *>(&sys_->addComponent(
        std::make_unique<NginxComponent>(80, sendfile)));
    libos::finishBoot(*sys_);

    nginxCid_ = sys_->cidOf("nginx");
    nginxPoll_ = sys_->resolve<int64_t(uint64_t)>("nginx", "nginx_poll");

    libos::TcpConfig ccfg;
    ccfg.ipAddr = 0x0A000002;
    client_ = std::make_unique<libos::TcpIpStack>(ccfg);
}

HttpHarness::~HttpHarness() = default;

void
HttpHarness::createFile(const std::string &path, std::size_t size)
{
    nginx_->createFile(path, size);
}

void
HttpHarness::pumpOnce()
{
    now_ += 1'000'000; // 1 ms of simulated time per round
    client_->tick(now_);
    client_->pollOutput([&](const uint8_t *p, std::size_t n) {
        wire_->hostSend(libos::FrameChannel::Frame(p, p + n));
    });
    sys_->runAs(nginxCid_, [&] { nginxPoll_(now_); });
    while (auto frame = wire_->hostRecv())
        client_->input(frame->data(), frame->size());
}

FetchResult
HttpHarness::fetch(const std::string &path)
{
    FetchResult res;
    const auto wall_start = std::chrono::steady_clock::now();
    const uint64_t cycles_start = sys_->clock().read();

    // Per-request fixed cost: external client plus network RTTs.
    sys_->clock().charge(requestBaseCycles_);

    const int fd = client_->socket();
    client_->connect(fd, 0x0A000001, 80);

    const std::string request =
        "GET " + path + " HTTP/1.1\r\nHost: bench\r\n\r\n";
    bool request_sent = false;

    std::string response;
    std::size_t content_length = 0;
    std::size_t header_end = std::string::npos;
    std::vector<char> buf(16384);

    for (int round = 0; round < 1'000'000; ++round) {
        pumpOnce();
        if (!request_sent && client_->isEstablished(fd)) {
            client_->send(fd, request.data(), request.size());
            request_sent = true;
        }
        const int64_t n = client_->recv(fd, buf.data(), buf.size());
        if (n > 0) {
            response.append(buf.data(), static_cast<std::size_t>(n));
        } else if (n == 0) {
            break; // orderly close
        }
        if (header_end == std::string::npos) {
            header_end = response.find("\r\n\r\n");
            if (header_end != std::string::npos) {
                const auto cl = response.find("Content-Length: ");
                if (cl != std::string::npos) {
                    content_length = static_cast<std::size_t>(
                        std::strtoull(response.c_str() + cl + 16,
                                      nullptr, 10));
                }
            }
        }
        if (header_end != std::string::npos &&
            response.size() >= header_end + 4 + content_length) {
            break;
        }
    }
    client_->close(fd);
    for (int i = 0; i < 5; ++i)
        pumpOnce(); // drain FIN exchange

    if (response.compare(0, 9, "HTTP/1.1 ") == 0)
        res.status = std::atoi(response.c_str() + 9);
    if (header_end != std::string::npos) {
        res.body = response.substr(header_end + 4);
        res.bodyBytes = res.body.size();
    }

    res.wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    res.modelMs = hw::CycleClock::toNanoseconds(sys_->clock().read() -
                                                cycles_start) /
                  1e6;
    return res;
}

MultiTenantHarness::MultiTenantHarness(int tenants,
                                       core::IsolationMode mode,
                                       std::size_t num_pages,
                                       int phys_budget,
                                       std::size_t dynamic_tags,
                                       uint64_t request_base_cycles)
    : tenants_(tenants), requestBaseCycles_(request_base_cycles)
{
    core::SystemConfig cfg;
    cfg.numPages = num_pages;
    cfg.mode = mode;
    // A multi-tenant deployment outgrows the 16 hardware keys almost
    // immediately (12 infrastructure cubicles + 2 per tenant), so tag
    // virtualisation is always on here.
    cfg.virtualizeTags = true;
    cfg.physTagBudget = phys_budget;
    cfg.dynamicTags = dynamic_tags;
    sys_ = std::make_unique<core::System>(cfg);
    wire_ = std::make_unique<libos::FrameChannel>(&sys_->clock());

    libos::StackOptions opts;
    opts.withNet = true;
    opts.wire = wire_.get();
    libos::addLibosComponents(*sys_, opts);
    for (int t = 0; t < tenants_; ++t) {
        const std::string srv = "tenant" + std::to_string(t);
        const std::string log = "tlog" + std::to_string(t);
        servers_.push_back(static_cast<NginxComponent *>(
            &sys_->addComponent(std::make_unique<NginxComponent>(
                srv, portOf(t), /*sendfile=*/false,
                "/" + srv, log))));
        logs_.push_back(static_cast<TenantLogComponent *>(
            &sys_->addComponent(
                std::make_unique<TenantLogComponent>(log))));
    }
    libos::finishBoot(*sys_);

    for (int t = 0; t < tenants_; ++t) {
        const std::string srv = "tenant" + std::to_string(t);
        cids_.push_back(sys_->cidOf(srv));
        polls_.push_back(
            sys_->resolve<int64_t(uint64_t)>(srv, "nginx_poll"));
        servers_[t]->makeDir("/" + srv);
    }

    libos::TcpConfig ccfg;
    ccfg.ipAddr = 0x0A000002;
    client_ = std::make_unique<libos::TcpIpStack>(ccfg);
}

MultiTenantHarness::~MultiTenantHarness() = default;

void
MultiTenantHarness::createFile(int t, const std::string &path,
                               std::size_t size)
{
    servers_[t]->createFile("/tenant" + std::to_string(t) + path, size);
}

void
MultiTenantHarness::pumpOnce(int t)
{
    // Event-loop discipline: only the tenant with pending work runs —
    // idle tenants stay parked, which is what makes the physical-tag
    // hit rate meaningful under per-tenant request batching.
    now_ += 1'000'000;
    client_->tick(now_);
    client_->pollOutput([&](const uint8_t *p, std::size_t n) {
        wire_->hostSend(libos::FrameChannel::Frame(p, p + n));
    });
    sys_->runAs(cids_[t], [&] { polls_[t](now_); });
    while (auto frame = wire_->hostRecv())
        client_->input(frame->data(), frame->size());
}

FetchResult
MultiTenantHarness::fetch(int t, const std::string &path)
{
    FetchResult res;
    const auto wall_start = std::chrono::steady_clock::now();
    const uint64_t cycles_start = sys_->clock().read();

    sys_->clock().charge(requestBaseCycles_);

    const int fd = client_->socket();
    client_->connect(fd, 0x0A000001, portOf(t));

    const std::string request =
        "GET " + path + " HTTP/1.1\r\nHost: tenant" + std::to_string(t) +
        "\r\n\r\n";
    bool request_sent = false;

    std::string response;
    std::size_t content_length = 0;
    std::size_t header_end = std::string::npos;
    std::vector<char> buf(16384);

    for (int round = 0; round < 1'000'000; ++round) {
        pumpOnce(t);
        if (!request_sent && client_->isEstablished(fd)) {
            client_->send(fd, request.data(), request.size());
            request_sent = true;
        }
        const int64_t n = client_->recv(fd, buf.data(), buf.size());
        if (n > 0) {
            response.append(buf.data(), static_cast<std::size_t>(n));
        } else if (n == 0) {
            break; // orderly close
        }
        if (header_end == std::string::npos) {
            header_end = response.find("\r\n\r\n");
            if (header_end != std::string::npos) {
                const auto cl = response.find("Content-Length: ");
                if (cl != std::string::npos) {
                    content_length = static_cast<std::size_t>(
                        std::strtoull(response.c_str() + cl + 16,
                                      nullptr, 10));
                }
            }
        }
        if (header_end != std::string::npos &&
            response.size() >= header_end + 4 + content_length) {
            break;
        }
    }
    client_->close(fd);
    for (int i = 0; i < 5; ++i)
        pumpOnce(t); // drain FIN exchange

    if (response.compare(0, 9, "HTTP/1.1 ") == 0)
        res.status = std::atoi(response.c_str() + 9);
    if (header_end != std::string::npos) {
        res.body = response.substr(header_end + 4);
        res.bodyBytes = res.body.size();
    }

    res.wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    res.modelMs = hw::CycleClock::toNanoseconds(sys_->clock().read() -
                                                cycles_start) /
                  1e6;
    return res;
}

} // namespace cubicleos::httpd
