#include "apps/httpd/httpd.h"

#include <cstring>

#include "hw/prng.h"

namespace cubicleos::httpd {

using libos::NetErr;

void
NginxComponent::init()
{
    sock_ = std::make_unique<libos::CubicleSockApi>(*sys());
    fs_ = std::make_unique<libos::CubicleFileApi>(*sys(), "ramfs");
    lwipCid_ = sys()->cidOf("lwip");

    auto buf_range =
        sys()->monitor().allocPagesFor(self(), hw::pagesFor(kIoChunk),
                                       mem::PageType::kHeap);
    if (!buf_range.valid())
        throw core::OutOfMemory("nginx I/O buffer");
    ioBuf_ = reinterpret_cast<char *>(buf_range.ptr);

    listenFd_ = sock_->socket();
    if (sock_->bind(listenFd_, port_) != 0 ||
        sock_->listen(listenFd_, 32) != 0) {
        throw core::LoaderError("nginx: cannot listen on port " +
                                std::to_string(port_));
    }
}

void
NginxComponent::registerExports(core::Exporter &exp)
{
    exp.fn<int64_t(uint64_t)>(
        "nginx_poll", [this](uint64_t now_ns) { return poll(now_ns); });
}

void
NginxComponent::makeDir(const std::string &path)
{
    sys()->runAs(self(), [&] {
        if (fs_->mkdir(path.c_str()) != 0)
            throw core::LoaderError("nginx: cannot mkdir " + path);
    });
}

void
NginxComponent::createFile(const std::string &path, std::size_t size)
{
    sys()->runAs(self(), [&] {
        const int fd =
            fs_->open(path.c_str(), libos::kCreate | libos::kWrOnly |
                                        libos::kTrunc);
        if (fd < 0)
            throw core::LoaderError("nginx: cannot create " + path);
        hw::Prng prng(std::hash<std::string>{}(path));
        std::size_t written = 0;
        while (written < size) {
            const std::size_t chunk =
                std::min(kIoChunk, size - written);
            for (std::size_t i = 0; i < chunk; ++i) {
                ioBuf_[i] = static_cast<char>(
                    'A' + ((written + i + prng.nextBelow(3)) % 26));
            }
            fs_->pwrite(fd, ioBuf_, chunk, written);
            written += chunk;
        }
        fs_->close(fd);
    });
}

int64_t
NginxComponent::poll(uint64_t now_ns)
{
    // Drive the network stack, accept new connections, advance all.
    sock_->poll(now_ns);

    for (;;) {
        const int fd = sock_->accept(listenFd_);
        if (fd < 0)
            break;
        Conn conn;
        conn.fd = fd;
        conn.buf = static_cast<char *>(sys()->heapAlloc(kIoChunk));
        conns_.push_back(conn);
    }

    int64_t active = 0;
    for (auto &conn : conns_) {
        if (conn.fd >= 0) {
            progress(conn);
            ++active;
        }
    }
    std::erase_if(conns_, [](const Conn &c) { return c.fd < 0; });

    // Tenant accounting: report completed requests to this tenant's
    // log cubicle, one batched cross-call per poll round.
    if (!logTo_.empty() && stats_.requests > loggedRequests_) {
        if (!logFn_)
            logFn_ = sys()->resolve<int64_t(int64_t)>(logTo_,
                                                      "log_requests");
        try {
            logFn_(
                static_cast<int64_t>(stats_.requests - loggedRequests_));
            loggedRequests_ = stats_.requests;
        } catch (const core::PeerFault &) {
            // Log cubicle destroyed mid-deployment: keep serving. A
            // restarted log rebuilds its counters from zero (its old
            // heap died with it), so drop the high-water mark too —
            // the next successful call re-delivers the full running
            // total and the log converges to the truth.
            loggedRequests_ = 0;
        }
    }
    return active;
}

void
NginxComponent::handleRequest(Conn &conn)
{
    // Parse "GET <path> HTTP/1.x".
    std::string path = "/";
    if (conn.request.compare(0, 4, "GET ") == 0) {
        const std::size_t sp = conn.request.find(' ', 4);
        if (sp != std::string::npos)
            path = conn.request.substr(4, sp - 4);
    }
    // Tenants serve from a private subtree of the shared RAMFS.
    path = docroot_ + path;

    libos::VfsStat st;
    const int rc = fs_->stat(path.c_str(), &st);
    if (rc != 0 || !st.isFile()) {
        conn.header = "HTTP/1.1 404 Not Found\r\n"
                      "Content-Length: 0\r\n"
                      "Connection: close\r\n\r\n";
        conn.fileFd = -1;
        conn.fileSize = 0;
        ++stats_.errors;
    } else {
        conn.fileFd = fs_->open(path.c_str(), libos::kRdOnly);
        conn.fileSize = st.size;
        conn.header = "HTTP/1.1 200 OK\r\n"
                      "Content-Length: " +
                      std::to_string(st.size) +
                      "\r\n"
                      "Content-Type: application/octet-stream\r\n"
                      "Connection: close\r\n\r\n";
    }
    conn.state = Conn::kSendHeader;
    conn.headerSent = 0;
}

void
NginxComponent::progress(Conn &conn)
{
    switch (conn.state) {
      case Conn::kReadRequest: {
        const int64_t n = sock_->recv(conn.fd, conn.buf, kIoChunk);
        if (n > 0) {
            conn.request.append(conn.buf, static_cast<std::size_t>(n));
            if (conn.request.find("\r\n\r\n") != std::string::npos)
                handleRequest(conn);
        } else if (n == 0 || (n < 0 && n != NetErr::kNetAgain)) {
            sock_->close(conn.fd);
            sys()->heapFree(conn.buf);
            conn.buf = nullptr;
            conn.fd = -1;
        }
        break;
      }
      case Conn::kSendHeader: {
        // Stage the header in the cubicle buffer and push it out.
        const std::size_t remaining =
            conn.header.size() - conn.headerSent;
        const std::size_t chunk = std::min(remaining, kIoChunk);
        std::memcpy(conn.buf, conn.header.data() + conn.headerSent,
                    chunk);
        sys()->stats().countDataCopy(chunk); // header → staging buffer
        const int64_t n = sock_->send(conn.fd, conn.buf, chunk);
        if (n == NetErr::kNetPeerFault) {
            dropConn(conn);
            break;
        }
        if (n > 0)
            conn.headerSent += static_cast<std::size_t>(n);
        if (conn.headerSent == conn.header.size()) {
            ++stats_.requests;
            if (conn.fileFd >= 0) {
                conn.state = Conn::kSendBody;
                conn.fileOff = 0;
                conn.chunkLen = conn.chunkSent = 0;
            } else {
                conn.state = Conn::kClosing;
            }
        }
        break;
      }
      case Conn::kSendBody: {
        if (sendfile_) {
            if (!conn.spanPending) {
                if (conn.fileOff >= conn.fileSize) {
                    // Keep fileFd open: outstanding spans are released
                    // through it once the stack acknowledges them.
                    conn.state = Conn::kClosing;
                    break;
                }
                const int rc =
                    fs_->borrow(conn.fileFd, conn.fileOff, lwipCid_,
                                kSendSpan, &conn.span);
                if (rc != 0 || conn.span.len == 0) {
                    conn.state = Conn::kClosing;
                    break;
                }
                conn.spanPending = true;
            }
            // One batched trip into LWIP per round: completion reap
            // and span queueing execute under a single
            // trampoline/PKRU switch via the submission ring, with
            // the reap ordered first so freshly-freed tokens can be
            // released this round.
            int64_t done = 0;
            int64_t n = 0;
            const bool reap = !conn.zcTokens.empty() && conn.fileFd >= 0;
            if (reap)
                sock_->submitZeroCopyDone(conn.fd, &done);
            // All-or-nothing queueing: on kNetAgain the same borrowed
            // span is retried next poll without re-borrowing.
            sock_->submitSendZero(conn.fd, conn.span.ptr, conn.span.len,
                                  &n);
            sock_->flushRing();
            if (reap)
                releaseTokens(conn, done);
            if (n > 0) {
                conn.fileOff += conn.span.len;
                stats_.bytesSent += conn.span.len;
                conn.zcTokens.push_back(conn.span.token);
                conn.spanPending = false;
            } else if (n == NetErr::kNetPeerFault) {
                dropConn(conn);
            } else if (n != NetErr::kNetAgain) {
                conn.state = Conn::kClosing;
            }
            break;
        }
        if (conn.chunkSent == conn.chunkLen) {
            // Refill from the file system.
            if (conn.fileOff >= conn.fileSize) {
                fs_->close(conn.fileFd);
                conn.fileFd = -1;
                conn.state = Conn::kClosing;
                break;
            }
            const int64_t got = fs_->pread(conn.fileFd, conn.buf,
                                           kIoChunk, conn.fileOff);
            if (got <= 0) {
                fs_->close(conn.fileFd);
                conn.fileFd = -1;
                conn.state = Conn::kClosing;
                break;
            }
            conn.chunkLen = static_cast<std::size_t>(got);
            conn.chunkSent = 0;
            conn.fileOff += static_cast<uint64_t>(got);
        }
        // memmove-free partial sends: send from the staged chunk.
        const int64_t n = sock_->send(conn.fd,
                                      conn.buf + conn.chunkSent,
                                      conn.chunkLen - conn.chunkSent);
        if (n == NetErr::kNetPeerFault) {
            dropConn(conn);
            break;
        }
        if (n > 0) {
            conn.chunkSent += static_cast<std::size_t>(n);
            stats_.bytesSent += static_cast<uint64_t>(n);
        }
        break;
      }
      case Conn::kClosing: {
        // A dead network stack can never drain its send queue or
        // acknowledge outstanding spans: the orderly close would spin
        // forever. Drop the connection instead.
        if (!sys()->monitor().cubicleAlive(lwipCid_)) {
            dropConn(conn);
            break;
        }
        if (conn.spanPending && conn.fileFd >= 0) {
            // Borrowed but never queued (connection died first): give
            // it straight back.
            fs_->release(conn.fileFd, conn.span.token);
            conn.spanPending = false;
        }
        releaseCompleted(conn);
        if (sock_->sendDrained(conn.fd) && conn.zcTokens.empty()) {
            if (conn.fileFd >= 0) {
                fs_->close(conn.fileFd);
                conn.fileFd = -1;
            }
            sock_->close(conn.fd);
            sys()->heapFree(conn.buf);
            conn.buf = nullptr;
            conn.fd = -1;
        }
        break;
      }
    }
}

void
NginxComponent::dropConn(Conn &conn)
{
    // Best-effort cleanup: any of these peers may be the one that
    // died, and each call below already degrades to an error return
    // (never an exception) in that case.
    if (conn.spanPending && conn.fileFd >= 0) {
        fs_->release(conn.fileFd, conn.span.token);
        conn.spanPending = false;
    }
    while (!conn.zcTokens.empty()) {
        if (conn.fileFd >= 0)
            fs_->release(conn.fileFd, conn.zcTokens.front());
        conn.zcTokens.pop_front();
    }
    if (conn.fileFd >= 0) {
        fs_->close(conn.fileFd);
        conn.fileFd = -1;
    }
    sock_->close(conn.fd);
    sys()->heapFree(conn.buf);
    conn.buf = nullptr;
    conn.fd = -1;
    ++stats_.errors;
}

void
NginxComponent::releaseCompleted(Conn &conn)
{
    if (conn.zcTokens.empty() || conn.fileFd < 0)
        return;
    releaseTokens(conn, sock_->zeroCopyDone(conn.fd));
}

void
NginxComponent::releaseTokens(Conn &conn, int64_t done)
{
    // Spans complete in FIFO submission order, so the completion count
    // maps onto our oldest outstanding tokens.
    while (done > 0 && !conn.zcTokens.empty()) {
        fs_->release(conn.fileFd, conn.zcTokens.front());
        conn.zcTokens.pop_front();
        --done;
    }
}

} // namespace cubicleos::httpd
