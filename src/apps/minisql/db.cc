#include "apps/minisql/db.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <map>

namespace cubicleos::minisql {

namespace {

std::vector<uint8_t>
rowidKey(int64_t rowid)
{
    std::vector<uint8_t> key;
    Value(rowid).encodeKey(&key);
    return key;
}

/** Length of the leading value encoding inside an index key. */
std::size_t
keyValueLen(std::span<const uint8_t> key)
{
    if (key.empty())
        return 0;
    switch (key[0]) {
      case 0x05:
        return 1; // NULL
      case 0x10:
        return 18; // numeric: tag + ordered(8) + subtag + raw(8)
      case 0x30: {
        // text: bytes with 0x00 escaped as 0x00 0xFF, terminated by
        // 0x00 0x00.
        std::size_t i = 1;
        while (i + 1 < key.size()) {
            if (key[i] == 0x00) {
                if (key[i + 1] == 0x00)
                    return i + 2;
                i += 2; // escaped NUL
            } else {
                ++i;
            }
        }
        return key.size();
      }
      default:
        return 1;
    }
}

/** Extracts the raw int64 from a numeric key encoding. */
int64_t
intFromKey(std::span<const uint8_t> key)
{
    // numeric layout: 0x10, ordered double (8), subtag, raw (8).
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v = (v << 8) | key[10 + i];
    return static_cast<int64_t>(v);
}

std::vector<uint8_t>
indexEntryKey(const Value &v, int64_t rowid)
{
    std::vector<uint8_t> key;
    v.encodeKey(&key);
    Value(rowid).encodeKey(&key);
    return key;
}

/** SQL LIKE with % and _ wildcards (case-sensitive). */
bool
likeMatch(const char *s, const char *p)
{
    for (;;) {
        if (*p == '\0')
            return *s == '\0';
        if (*p == '%') {
            while (*p == '%')
                ++p;
            if (*p == '\0')
                return true;
            for (; *s; ++s) {
                if (likeMatch(s, p))
                    return true;
            }
            return false;
        }
        if (*s == '\0')
            return false;
        if (*p != '_' && *p != *s)
            return false;
        ++s;
        ++p;
    }
}

bool
bothInt(const Value &a, const Value &b)
{
    return a.type() == ValueType::kInt && b.type() == ValueType::kInt;
}

} // namespace

// ----------------------------------------------------------------------

class Database::Executor {
  public:
    Executor(Pager *pager, Catalog *catalog)
        : pager_(pager), catalog_(catalog)
    {}

    ResultSet exec(const Stmt &stmt)
    {
        return std::visit(
            [this](const auto &s) { return execOne(s); }, stmt);
    }

  private:
    struct Binding {
        std::string alias;
        const TableDef *def;
        const Row *row;
        int64_t rowid;
    };
    using Env = std::vector<Binding>;
    using AggMap = std::map<const Expr *, Value>;

    // --- expression evaluation ---------------------------------------

    Value eval(const Expr &e, const Env &env, const AggMap *aggs)
    {
        switch (e.op) {
          case ExprOp::kLiteral:
            return e.lit;
          case ExprOp::kColumn:
            return resolveColumn(e, env);
          case ExprOp::kStar:
            throw SqlError("'*' not allowed here");
          case ExprOp::kCall: {
            if (!aggs)
                throw SqlError("aggregate outside aggregation: " +
                               e.func);
            auto it = aggs->find(&e);
            if (it == aggs->end())
                throw SqlError("unresolved aggregate");
            return it->second;
          }
          case ExprOp::kNeg: {
            const Value v = eval(*e.args[0], env, aggs);
            if (v.type() == ValueType::kInt)
                return Value(-v.asInt());
            return Value(-v.asReal());
          }
          case ExprOp::kAdd:
          case ExprOp::kSub:
          case ExprOp::kMul:
          case ExprOp::kDiv:
          case ExprOp::kMod:
            return arithmetic(e, env, aggs);
          case ExprOp::kEq:
          case ExprOp::kNe:
          case ExprOp::kLt:
          case ExprOp::kLe:
          case ExprOp::kGt:
          case ExprOp::kGe: {
            const Value a = eval(*e.args[0], env, aggs);
            const Value b = eval(*e.args[1], env, aggs);
            if (a.isNull() || b.isNull()) {
                // Simplified NULL semantics: only IS NULL (= NULL)
                // yields true.
                return Value(static_cast<int64_t>(
                    e.op == ExprOp::kEq && a.isNull() && b.isNull()));
            }
            const int c = a.compare(b);
            bool r = false;
            switch (e.op) {
              case ExprOp::kEq: r = c == 0; break;
              case ExprOp::kNe: r = c != 0; break;
              case ExprOp::kLt: r = c < 0; break;
              case ExprOp::kLe: r = c <= 0; break;
              case ExprOp::kGt: r = c > 0; break;
              default: r = c >= 0; break;
            }
            return Value(static_cast<int64_t>(r));
          }
          case ExprOp::kAnd:
            return Value(static_cast<int64_t>(
                eval(*e.args[0], env, aggs).truthy() &&
                eval(*e.args[1], env, aggs).truthy()));
          case ExprOp::kOr:
            return Value(static_cast<int64_t>(
                eval(*e.args[0], env, aggs).truthy() ||
                eval(*e.args[1], env, aggs).truthy()));
          case ExprOp::kNot:
            return Value(static_cast<int64_t>(
                !eval(*e.args[0], env, aggs).truthy()));
          case ExprOp::kLike: {
            const Value s = eval(*e.args[0], env, aggs);
            const Value p = eval(*e.args[1], env, aggs);
            if (s.isNull() || p.isNull())
                return Value(static_cast<int64_t>(0));
            return Value(static_cast<int64_t>(
                likeMatch(s.asText().c_str(), p.asText().c_str())));
          }
          case ExprOp::kBetween: {
            const Value v = eval(*e.args[0], env, aggs);
            const Value lo = eval(*e.args[1], env, aggs);
            const Value hi = eval(*e.args[2], env, aggs);
            if (v.isNull())
                return Value(static_cast<int64_t>(0));
            return Value(static_cast<int64_t>(v.compare(lo) >= 0 &&
                                              v.compare(hi) <= 0));
          }
          case ExprOp::kIn: {
            const Value v = eval(*e.args[0], env, aggs);
            for (std::size_t i = 1; i < e.args.size(); ++i) {
                if (v.compare(eval(*e.args[i], env, aggs)) == 0)
                    return Value(static_cast<int64_t>(1));
            }
            return Value(static_cast<int64_t>(0));
          }
        }
        throw SqlError("unhandled expression");
    }

    Value arithmetic(const Expr &e, const Env &env, const AggMap *aggs)
    {
        const Value a = eval(*e.args[0], env, aggs);
        const Value b = eval(*e.args[1], env, aggs);
        if (a.isNull() || b.isNull())
            return Value::null();
        if (bothInt(a, b) && e.op != ExprOp::kDiv) {
            const int64_t x = a.asInt(), y = b.asInt();
            switch (e.op) {
              case ExprOp::kAdd: return Value(x + y);
              case ExprOp::kSub: return Value(x - y);
              case ExprOp::kMul: return Value(x * y);
              case ExprOp::kMod:
                return y == 0 ? Value::null() : Value(x % y);
              default: break;
            }
        }
        const double x = a.asReal(), y = b.asReal();
        switch (e.op) {
          case ExprOp::kAdd: return Value(x + y);
          case ExprOp::kSub: return Value(x - y);
          case ExprOp::kMul: return Value(x * y);
          case ExprOp::kDiv:
            if (y == 0)
                return Value::null();
            if (bothInt(a, b))
                return Value(a.asInt() / b.asInt());
            return Value(x / y);
          case ExprOp::kMod: {
            const int64_t yi = b.asInt();
            return yi == 0 ? Value::null() : Value(a.asInt() % yi);
          }
          default:
            throw SqlError("bad arithmetic");
        }
    }

    Value resolveColumn(const Expr &e, const Env &env)
    {
        for (const Binding &b : env) {
            if (!e.table.empty() && e.table != b.alias &&
                e.table != b.def->name) {
                continue;
            }
            if (e.column == "rowid")
                return Value(b.rowid);
            const int idx = b.def->columnIndexOf(e.column);
            if (idx >= 0)
                return (*b.row)[static_cast<std::size_t>(idx)];
            if (!e.table.empty())
                break;
        }
        throw SqlError("no such column: " +
                       (e.table.empty() ? e.column
                                        : e.table + "." + e.column));
    }

    // --- access planning ----------------------------------------------

    struct Bound {
        Value v;
        bool inclusive = true;
        bool present = false;
    };

    struct AccessPath {
        enum Kind { kFull, kRowid, kIndex } kind = kFull;
        IndexDef *idx = nullptr;
        Bound lo, hi;
    };

    static void collectConjuncts(const Expr *e,
                                 std::vector<const Expr *> *out)
    {
        if (!e)
            return;
        if (e->op == ExprOp::kAnd) {
            collectConjuncts(e->args[0].get(), out);
            collectConjuncts(e->args[1].get(), out);
        } else {
            out->push_back(e);
        }
    }

    /** True if @p e contains a column reference not resolvable in
     * @p env (i.e. it depends on the scan target or is unknown). */
    bool dependsOnTarget(const Expr &e, const Env &outer)
    {
        if (e.op == ExprOp::kColumn) {
            for (const Binding &b : outer) {
                if (!e.table.empty() && e.table != b.alias &&
                    e.table != b.def->name)
                    continue;
                if (e.column == "rowid" ||
                    b.def->columnIndexOf(e.column) >= 0)
                    return false;
            }
            return true;
        }
        for (const auto &arg : e.args) {
            if (dependsOnTarget(*arg, outer))
                return true;
        }
        return false;
    }

    /** Is @p e a reference to @p column of the scan target? */
    bool isTargetColumn(const Expr &e, const TableDef &def,
                        const std::string &alias,
                        const std::string &column)
    {
        return e.op == ExprOp::kColumn && e.column == column &&
               (e.table.empty() || e.table == alias ||
                e.table == def.name);
    }

    AccessPath planAccess(const TableDef &def, const std::string &alias,
                          const Expr *where, const Env &outer)
    {
        AccessPath path;
        std::vector<const Expr *> conjuncts;
        collectConjuncts(where, &conjuncts);

        auto indexes = catalog_->indexesOn(def.name);
        const std::string rowid_col =
            def.rowidColumn >= 0
                ? def.columns[static_cast<std::size_t>(def.rowidColumn)]
                      .name
                : std::string("rowid");

        struct Candidate {
            AccessPath path;
            int score = 0;
        };
        Candidate best;

        auto consider = [&](const Expr &col_expr, ExprOp op,
                            const Expr &val_expr) {
            if (dependsOnTarget(val_expr, outer))
                return;
            Value v;
            try {
                v = eval(val_expr, outer, nullptr);
            } catch (const SqlError &) {
                return;
            }

            auto apply = [&](AccessPath::Kind kind, IndexDef *idx,
                             int base_score) {
                Candidate cand;
                cand.path.kind = kind;
                cand.path.idx = idx;
                switch (op) {
                  case ExprOp::kEq:
                    cand.path.lo = {v, true, true};
                    cand.path.hi = {v, true, true};
                    cand.score = base_score + 2;
                    break;
                  case ExprOp::kGt:
                    cand.path.lo = {v, false, true};
                    cand.score = base_score;
                    break;
                  case ExprOp::kGe:
                    cand.path.lo = {v, true, true};
                    cand.score = base_score;
                    break;
                  case ExprOp::kLt:
                    cand.path.hi = {v, false, true};
                    cand.score = base_score;
                    break;
                  case ExprOp::kLe:
                    cand.path.hi = {v, true, true};
                    cand.score = base_score;
                    break;
                  default:
                    return;
                }
                if (cand.score > best.score) {
                    best = std::move(cand);
                } else if (cand.score == best.score &&
                           best.path.kind == cand.path.kind &&
                           best.path.idx == cand.path.idx) {
                    // Merge complementary range bounds (a > x AND
                    // a < y).
                    if (cand.path.lo.present && !best.path.lo.present)
                        best.path.lo = cand.path.lo;
                    if (cand.path.hi.present && !best.path.hi.present)
                        best.path.hi = cand.path.hi;
                }
            };

            if (isTargetColumn(col_expr, def, alias, rowid_col) ||
                isTargetColumn(col_expr, def, alias, "rowid")) {
                apply(AccessPath::kRowid, nullptr, 10);
                return;
            }
            for (IndexDef *idx : indexes) {
                if (isTargetColumn(col_expr, def, alias, idx->column)) {
                    apply(AccessPath::kIndex, idx, 5);
                    return;
                }
            }
        };

        static const auto flip = [](ExprOp op) {
            switch (op) {
              case ExprOp::kLt: return ExprOp::kGt;
              case ExprOp::kLe: return ExprOp::kGe;
              case ExprOp::kGt: return ExprOp::kLt;
              case ExprOp::kGe: return ExprOp::kLe;
              default: return op;
            }
        };

        for (const Expr *c : conjuncts) {
            switch (c->op) {
              case ExprOp::kEq:
              case ExprOp::kLt:
              case ExprOp::kLe:
              case ExprOp::kGt:
              case ExprOp::kGe:
                consider(*c->args[0], c->op, *c->args[1]);
                consider(*c->args[1], flip(c->op), *c->args[0]);
                break;
              case ExprOp::kBetween:
                consider(*c->args[0], ExprOp::kGe, *c->args[1]);
                consider(*c->args[0], ExprOp::kLe, *c->args[2]);
                break;
              default:
                break;
            }
        }
        return best.score > 0 ? best.path : path;
    }

    // --- scanning -----------------------------------------------------

    /** Calls @p fn(rowid, row) for rows selected by @p path. */
    void scan(const TableDef &def, const AccessPath &path,
              const std::function<bool(int64_t, const Row &)> &fn)
    {
        BTree table(pager_, def.root);

        if (path.kind == AccessPath::kIndex) {
            BTree index(pager_, path.idx->root);
            auto cur = index.cursor();
            std::vector<uint8_t> lo_enc, hi_enc;
            if (path.lo.present)
                path.lo.v.encodeKey(&lo_enc);
            if (path.hi.present)
                path.hi.v.encodeKey(&hi_enc);

            if (path.lo.present)
                cur.seek(lo_enc);
            else
                cur.seekFirst();
            for (; cur.valid(); cur.next()) {
                const auto key = cur.key();
                const std::size_t vlen = keyValueLen(key);
                std::span<const uint8_t> vpart(key.data(), vlen);
                if (path.lo.present && !path.lo.inclusive) {
                    if (vlen == lo_enc.size() &&
                        std::memcmp(vpart.data(), lo_enc.data(), vlen) ==
                            0) {
                        continue;
                    }
                }
                if (path.hi.present) {
                    const int c = std::memcmp(
                        vpart.data(), hi_enc.data(),
                        std::min(vlen, hi_enc.size()));
                    const int cmp =
                        c != 0 ? c
                               : (vlen < hi_enc.size()
                                      ? -1
                                      : vlen > hi_enc.size() ? 1 : 0);
                    if (cmp > 0 || (cmp == 0 && !path.hi.inclusive))
                        break;
                }
                const int64_t rowid = intFromKey(
                    std::span<const uint8_t>(key).subspan(vlen));
                std::vector<uint8_t> rec;
                if (!table.find(rowidKey(rowid), &rec))
                    continue; // dangling index entry
                const Row row = decodeRow(rec.data(), rec.size());
                if (!fn(rowid, row))
                    return;
            }
            return;
        }

        // Rowid-ordered scan over the table tree (full or ranged).
        auto cur = table.cursor();
        std::vector<uint8_t> lo_enc, hi_enc;
        if (path.kind == AccessPath::kRowid && path.lo.present) {
            Value(path.lo.v.asInt()).encodeKey(&lo_enc);
            cur.seek(lo_enc);
        } else {
            cur.seekFirst();
        }
        if (path.kind == AccessPath::kRowid && path.hi.present)
            Value(path.hi.v.asInt()).encodeKey(&hi_enc);

        for (; cur.valid(); cur.next()) {
            const auto key = cur.key();
            const int64_t rowid = intFromKey(key);
            if (path.kind == AccessPath::kRowid) {
                if (path.lo.present && !path.lo.inclusive &&
                    rowid == path.lo.v.asInt()) {
                    continue;
                }
                if (path.hi.present) {
                    const int64_t hi = path.hi.v.asInt();
                    if (rowid > hi || (rowid == hi && !path.hi.inclusive))
                        break;
                }
            }
            const auto rec = cur.value();
            const Row row = decodeRow(rec.data(), rec.size());
            if (!fn(rowid, row))
                return;
        }
    }

    // --- statement execution -------------------------------------------

    ResultSet execOne(const CreateTableStmt &stmt)
    {
        catalog_->createTable(stmt);
        return {};
    }

    ResultSet execOne(const CreateIndexStmt &stmt)
    {
        IndexDef *idx = catalog_->createIndex(stmt);
        // Backfill from existing rows.
        TableDef *def = catalog_->table(stmt.table);
        BTree index(pager_, idx->root);
        std::vector<std::pair<int64_t, Value>> entries;
        scan(*def, AccessPath{}, [&](int64_t rowid, const Row &row) {
            entries.emplace_back(
                rowid, row[static_cast<std::size_t>(idx->columnIndex)]);
            return true;
        });
        for (const auto &[rowid, v] : entries) {
            if (idx->unique && indexHasValue(*idx, v)) {
                throw SqlError("UNIQUE constraint failed: " +
                               idx->table + "." + idx->column);
            }
            index.insert(indexEntryKey(v, rowid), {});
        }
        return {};
    }

    ResultSet execOne(const DropTableStmt &stmt)
    {
        catalog_->dropTable(stmt.name);
        return {};
    }

    bool indexHasValue(const IndexDef &idx, const Value &v)
    {
        BTree index(pager_, idx.root);
        std::vector<uint8_t> prefix;
        v.encodeKey(&prefix);
        auto cur = index.cursor();
        cur.seek(prefix);
        if (!cur.valid())
            return false;
        const auto key = cur.key();
        return key.size() >= prefix.size() &&
               std::memcmp(key.data(), prefix.data(), prefix.size()) ==
                   0;
    }

    int64_t ensureNextRowid(TableDef *def)
    {
        if (def->nextRowid < 0) {
            int64_t max_rowid = 0;
            scan(*def, AccessPath{}, [&](int64_t rowid, const Row &) {
                max_rowid = std::max(max_rowid, rowid);
                return true;
            });
            def->nextRowid = max_rowid + 1;
        }
        return def->nextRowid;
    }

    void insertIndexEntries(const TableDef &def, int64_t rowid,
                            const Row &row)
    {
        for (IndexDef *idx : catalog_->indexesOn(def.name)) {
            const Value &v =
                row[static_cast<std::size_t>(idx->columnIndex)];
            if (idx->unique && indexHasValue(*idx, v)) {
                throw SqlError("UNIQUE constraint failed: " +
                               idx->table + "." + idx->column);
            }
            BTree index(pager_, idx->root);
            index.insert(indexEntryKey(v, rowid), {});
        }
    }

    void removeIndexEntries(const TableDef &def, int64_t rowid,
                            const Row &row)
    {
        for (IndexDef *idx : catalog_->indexesOn(def.name)) {
            const Value &v =
                row[static_cast<std::size_t>(idx->columnIndex)];
            BTree index(pager_, idx->root);
            index.erase(indexEntryKey(v, rowid));
        }
    }

    ResultSet execOne(const InsertStmt &stmt)
    {
        TableDef *def = catalog_->table(stmt.table);
        if (!def)
            throw SqlError("no such table: " + stmt.table);
        BTree table(pager_, def->root);

        int64_t changes = 0;
        for (const auto &exprs : stmt.rows) {
            Row row(def->columns.size());
            if (stmt.columns.empty()) {
                if (exprs.size() > def->columns.size())
                    throw SqlError("too many values");
                for (std::size_t i = 0; i < exprs.size(); ++i)
                    row[i] = eval(*exprs[i], {}, nullptr);
            } else {
                if (exprs.size() != stmt.columns.size())
                    throw SqlError("values/columns count mismatch");
                for (std::size_t i = 0; i < exprs.size(); ++i) {
                    const int idx =
                        def->columnIndexOf(stmt.columns[i]);
                    if (idx < 0)
                        throw SqlError("no such column: " +
                                       stmt.columns[i]);
                    row[static_cast<std::size_t>(idx)] =
                        eval(*exprs[i], {}, nullptr);
                }
            }

            int64_t rowid;
            if (def->rowidColumn >= 0 &&
                !row[static_cast<std::size_t>(def->rowidColumn)]
                     .isNull()) {
                rowid =
                    row[static_cast<std::size_t>(def->rowidColumn)]
                        .asInt();
                if (table.find(rowidKey(rowid), nullptr)) {
                    throw SqlError(
                        "UNIQUE constraint failed: " + def->name +
                        " primary key");
                }
                def->nextRowid =
                    std::max(ensureNextRowid(def), rowid + 1);
            } else {
                rowid = ensureNextRowid(def);
                def->nextRowid = rowid + 1;
                if (def->rowidColumn >= 0) {
                    row[static_cast<std::size_t>(def->rowidColumn)] =
                        Value(rowid);
                }
            }

            table.insert(rowidKey(rowid), encodeRow(row));
            insertIndexEntries(*def, rowid, row);
            ++changes;
        }
        ResultSet rs;
        rs.columns = {"rows_affected"};
        rs.rows.push_back(Row{Value(changes)});
        return rs;
    }

    ResultSet execOne(const UpdateStmt &stmt)
    {
        TableDef *def = catalog_->table(stmt.table);
        if (!def)
            throw SqlError("no such table: " + stmt.table);

        const AccessPath path =
            planAccess(*def, stmt.table, stmt.where.get(), {});
        std::vector<std::pair<int64_t, Row>> victims;
        scan(*def, path, [&](int64_t rowid, const Row &row) {
            Env env{{stmt.table, def, &row, rowid}};
            if (!stmt.where || eval(*stmt.where, env, nullptr).truthy())
                victims.emplace_back(rowid, row);
            return true;
        });

        BTree table(pager_, def->root);
        int64_t changes = 0;
        for (auto &[rowid, old_row] : victims) {
            Row new_row = old_row;
            Env env{{stmt.table, def, &old_row, rowid}};
            for (const auto &[col, expr] : stmt.sets) {
                const int idx = def->columnIndexOf(col);
                if (idx < 0)
                    throw SqlError("no such column: " + col);
                new_row[static_cast<std::size_t>(idx)] =
                    eval(*expr, env, nullptr);
            }

            int64_t new_rowid = rowid;
            if (def->rowidColumn >= 0) {
                new_rowid =
                    new_row[static_cast<std::size_t>(def->rowidColumn)]
                        .asInt();
            }
            removeIndexEntries(*def, rowid, old_row);
            if (new_rowid != rowid) {
                table.erase(rowidKey(rowid));
                if (table.find(rowidKey(new_rowid), nullptr)) {
                    throw SqlError("UNIQUE constraint failed: " +
                                   def->name + " primary key");
                }
            }
            table.insert(rowidKey(new_rowid), encodeRow(new_row));
            insertIndexEntries(*def, new_rowid, new_row);
            ++changes;
        }
        ResultSet rs;
        rs.columns = {"rows_affected"};
        rs.rows.push_back(Row{Value(changes)});
        return rs;
    }

    ResultSet execOne(const DeleteStmt &stmt)
    {
        TableDef *def = catalog_->table(stmt.table);
        if (!def)
            throw SqlError("no such table: " + stmt.table);

        const AccessPath path =
            planAccess(*def, stmt.table, stmt.where.get(), {});
        std::vector<std::pair<int64_t, Row>> victims;
        scan(*def, path, [&](int64_t rowid, const Row &row) {
            Env env{{stmt.table, def, &row, rowid}};
            if (!stmt.where || eval(*stmt.where, env, nullptr).truthy())
                victims.emplace_back(rowid, row);
            return true;
        });

        BTree table(pager_, def->root);
        for (auto &[rowid, row] : victims) {
            removeIndexEntries(*def, rowid, row);
            table.erase(rowidKey(rowid));
        }
        ResultSet rs;
        rs.columns = {"rows_affected"};
        rs.rows.push_back(
            Row{Value(static_cast<int64_t>(victims.size()))});
        return rs;
    }

    // --- SELECT ---------------------------------------------------------

    static void collectAggregates(const Expr &e,
                                  std::vector<const Expr *> *out)
    {
        if (e.op == ExprOp::kCall) {
            out->push_back(&e);
            return; // no nested aggregates
        }
        for (const auto &arg : e.args)
            collectAggregates(*arg, out);
    }

    /**
     * Runs the FROM/JOIN/WHERE pipeline, invoking @p fn once per
     * joined row environment.
     */
    void scanJoined(const SelectStmt &sel,
                    const std::function<void(const Env &)> &fn)
    {
        if (sel.table.empty()) {
            // FROM-less SELECT: one empty row.
            Env env;
            if (!sel.where || eval(*sel.where, env, nullptr).truthy())
                fn(env);
            return;
        }
        TableDef *base = catalog_->table(sel.table);
        if (!base)
            throw SqlError("no such table: " + sel.table);
        const std::string base_alias =
            sel.tableAlias.empty() ? sel.table : sel.tableAlias;

        // Recursive nested-loop join.
        std::function<void(std::size_t, Env &)> step =
            [&](std::size_t join_idx, Env &env) {
                if (join_idx == sel.joins.size()) {
                    if (!sel.where ||
                        eval(*sel.where, env, nullptr).truthy()) {
                        fn(env);
                    }
                    return;
                }
                const JoinClause &jc = sel.joins[join_idx];
                TableDef *def = catalog_->table(jc.table);
                if (!def)
                    throw SqlError("no such table: " + jc.table);
                const std::string alias =
                    jc.alias.empty() ? jc.table : jc.alias;
                const AccessPath path =
                    planAccess(*def, alias, jc.on.get(), env);
                scan(*def, path, [&](int64_t rowid, const Row &row) {
                    env.push_back(Binding{alias, def, &row, rowid});
                    if (!jc.on ||
                        eval(*jc.on, env, nullptr).truthy()) {
                        step(join_idx + 1, env);
                    }
                    env.pop_back();
                    return true;
                });
            };

        const AccessPath base_path =
            planAccess(*base, base_alias, sel.where.get(), {});
        scan(*base, base_path, [&](int64_t rowid, const Row &row) {
            Env env{Binding{base_alias, base, &row, rowid}};
            if (sel.joins.empty()) {
                if (!sel.where ||
                    eval(*sel.where, env, nullptr).truthy()) {
                    fn(env);
                }
            } else {
                step(0, env);
            }
            return true;
        });
    }

    std::string itemName(const SelectItem &item, std::size_t idx)
    {
        if (!item.alias.empty())
            return item.alias;
        if (item.expr->op == ExprOp::kColumn)
            return item.expr->column;
        if (item.expr->op == ExprOp::kCall)
            return item.expr->func;
        return "col" + std::to_string(idx);
    }

    ResultSet execOne(const SelectStmt &sel)
    {
        // Detect aggregation.
        std::vector<const Expr *> agg_nodes;
        for (const auto &item : sel.items)
            collectAggregates(*item.expr, &agg_nodes);
        for (const auto &key : sel.orderBy)
            collectAggregates(*key.expr, &agg_nodes);
        const bool aggregated =
            !agg_nodes.empty() || !sel.groupBy.empty();

        ResultSet rs;
        bool star_expanded = false;
        std::vector<std::pair<Row, Row>> keyed_rows; ///< (order, row)

        auto emitProjected = [&](const Env &env, const AggMap *aggs) {
            Row out;
            for (std::size_t i = 0; i < sel.items.size(); ++i) {
                const Expr &e = *sel.items[i].expr;
                if (e.op == ExprOp::kStar) {
                    for (const Binding &b : env) {
                        for (std::size_t c = 0;
                             c < b.def->columns.size(); ++c) {
                            out.push_back((*b.row)[c]);
                            if (!star_expanded)
                                rs.columns.push_back(
                                    b.def->columns[c].name);
                        }
                    }
                    continue;
                }
                out.push_back(eval(e, env, aggs));
            }
            star_expanded = true;
            Row order_key;
            for (const auto &key : sel.orderBy)
                order_key.push_back(eval(*key.expr, env, aggs));
            keyed_rows.emplace_back(std::move(order_key),
                                    std::move(out));
        };

        // Column headers for non-star items.
        for (std::size_t i = 0; i < sel.items.size(); ++i) {
            if (sel.items[i].expr->op != ExprOp::kStar)
                rs.columns.push_back(itemName(sel.items[i], i));
        }

        if (!aggregated) {
            scanJoined(sel, [&](const Env &env) {
                emitProjected(env, nullptr);
            });
        } else {
            // Group rows; keep a representative row set per group so
            // non-aggregate expressions (the GROUP BY keys) evaluate.
            struct Group {
                std::vector<Row> rows;
                std::vector<int64_t> rowids;
                std::vector<std::string> aliases;
                std::vector<const TableDef *> defs;
                struct Acc {
                    int64_t count = 0;
                    double rsum = 0;
                    int64_t isum = 0;
                    bool real = false;
                    bool any = false;
                    Value minv, maxv;
                };
                std::vector<Acc> accs;
            };
            std::map<std::string, Group> groups;

            scanJoined(sel, [&](const Env &env) {
                std::vector<uint8_t> gk;
                for (const auto &g : sel.groupBy)
                    eval(*g, env, nullptr).encodeKey(&gk);
                std::string key(gk.begin(), gk.end());
                Group &grp = groups[key];
                if (grp.rows.empty()) {
                    for (const Binding &b : env) {
                        grp.rows.push_back(*b.row);
                        grp.rowids.push_back(b.rowid);
                        grp.aliases.push_back(b.alias);
                        grp.defs.push_back(b.def);
                    }
                    grp.accs.resize(agg_nodes.size());
                }
                for (std::size_t i = 0; i < agg_nodes.size(); ++i) {
                    const Expr &call = *agg_nodes[i];
                    Group::Acc &acc = grp.accs[i];
                    Value v;
                    const bool star =
                        call.args.empty() ||
                        call.args[0]->op == ExprOp::kStar;
                    if (!star)
                        v = eval(*call.args[0], env, nullptr);
                    if (call.func == "count") {
                        if (star || !v.isNull())
                            ++acc.count;
                        continue;
                    }
                    if (v.isNull())
                        continue;
                    ++acc.count;
                    acc.rsum += v.asReal();
                    acc.isum += v.asInt();
                    acc.real = acc.real ||
                               v.type() == ValueType::kReal;
                    if (!acc.any || v.compare(acc.minv) < 0)
                        acc.minv = v;
                    if (!acc.any || v.compare(acc.maxv) > 0)
                        acc.maxv = v;
                    acc.any = true;
                }
            });

            // Aggregates over an empty input without GROUP BY still
            // produce one row.
            if (groups.empty() && sel.groupBy.empty())
                groups.emplace("", Group{});

            for (auto &[key, grp] : groups) {
                if (grp.accs.empty())
                    grp.accs.resize(agg_nodes.size());
                AggMap aggs;
                for (std::size_t i = 0; i < agg_nodes.size(); ++i) {
                    const Expr &call = *agg_nodes[i];
                    const Group::Acc &acc = grp.accs[i];
                    Value v;
                    if (call.func == "count") {
                        v = Value(acc.count);
                    } else if (!acc.any) {
                        v = Value::null();
                    } else if (call.func == "sum" ||
                               call.func == "total") {
                        v = acc.real ? Value(acc.rsum)
                                     : Value(acc.isum);
                    } else if (call.func == "avg") {
                        v = Value(acc.rsum /
                                  static_cast<double>(acc.count));
                    } else if (call.func == "min") {
                        v = acc.minv;
                    } else if (call.func == "max") {
                        v = acc.maxv;
                    } else {
                        throw SqlError("unknown function: " +
                                       call.func);
                    }
                    aggs[&call] = std::move(v);
                }
                Env env;
                for (std::size_t b = 0; b < grp.rows.size(); ++b) {
                    env.push_back(Binding{grp.aliases[b], grp.defs[b],
                                          &grp.rows[b],
                                          grp.rowids[b]});
                }
                emitProjected(env, &aggs);
            }
        }

        // ORDER BY + LIMIT.
        if (!sel.orderBy.empty()) {
            std::stable_sort(
                keyed_rows.begin(), keyed_rows.end(),
                [&](const auto &a, const auto &b) {
                    for (std::size_t i = 0; i < sel.orderBy.size();
                         ++i) {
                        const int c = a.first[i].compare(b.first[i]);
                        if (c != 0)
                            return sel.orderBy[i].desc ? c > 0 : c < 0;
                    }
                    return false;
                });
        }
        for (auto &[key, row] : keyed_rows) {
            if (sel.limit >= 0 &&
                rs.rows.size() >=
                    static_cast<std::size_t>(sel.limit)) {
                break;
            }
            rs.rows.push_back(std::move(row));
        }
        return rs;
    }

    ResultSet execOne(const TxnStmt &)
    {
        throw SqlError("transaction control handled by Database");
    }

    ResultSet execOne(const PragmaStmt &stmt)
    {
        ResultSet rs;
        if (stmt.name == "integrity_check") {
            rs.columns = {"integrity_check"};
            std::string err;
            bool ok = true;
            for (const auto &[name, def] : catalog_->tables()) {
                BTree tree(pager_, def.root);
                if (!tree.validate(&err)) {
                    ok = false;
                    rs.rows.push_back(
                        Row{Value(name + ": " + err)});
                }
            }
            if (ok)
                rs.rows.push_back(Row{Value(std::string("ok"))});
            return rs;
        }
        if (stmt.name == "stats" || stmt.name == "analyze") {
            rs.columns = {"table", "rows"};
            for (const auto &[name, def] : catalog_->tables()) {
                BTree tree(pager_, def.root);
                rs.rows.push_back(
                    Row{Value(name),
                        Value(static_cast<int64_t>(
                            tree.countEntries()))});
            }
            return rs;
        }
        rs.columns = {"pragma"};
        return rs;
    }

    Pager *pager_;
    Catalog *catalog_;
};

// ----------------------------------------------------------------------

Database::Database(libos::FileApi *fs, std::string path,
                   std::size_t cache_pages, DbAllocator mem)
    : pager_(std::make_unique<Pager>(fs, std::move(path), cache_pages,
                                     std::move(mem))),
      catalog_(pager_.get())
{
}

Database::~Database()
{
    if (pager_->inTransaction())
        pager_->commit();
}

int
Database::open(bool create)
{
    const int rc = pager_->open(create);
    if (rc != 0)
        return rc;
    catalog_.load();
    return 0;
}

ResultSet
Database::exec(const std::string &sql)
{
    std::vector<Stmt> stmts = parseSql(sql);
    Executor executor(pager_.get(), &catalog_);
    ResultSet last;

    for (Stmt &stmt : stmts) {
        if (auto *txn = std::get_if<TxnStmt>(&stmt)) {
            switch (txn->kind) {
              case TxnStmt::kBegin:
                if (pager_->inTransaction())
                    throw SqlError("nested BEGIN");
                pager_->begin();
                explicitTxn_ = true;
                break;
              case TxnStmt::kCommit:
                if (!explicitTxn_)
                    throw SqlError("COMMIT outside transaction");
                pager_->commit();
                explicitTxn_ = false;
                break;
              case TxnStmt::kRollback:
                if (!explicitTxn_)
                    throw SqlError("ROLLBACK outside transaction");
                pager_->rollback();
                explicitTxn_ = false;
                catalog_.load(); // schema may have rolled back
                break;
            }
            continue;
        }

        const bool auto_txn = !pager_->inTransaction();
        if (auto_txn)
            pager_->begin();
        try {
            last = executor.exec(stmt);
        } catch (...) {
            if (auto_txn) {
                pager_->rollback();
                catalog_.load();
            }
            throw;
        }
        if (auto_txn)
            pager_->commit();
    }
    return last;
}

} // namespace cubicleos::minisql
