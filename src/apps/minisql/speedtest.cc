#include "apps/minisql/speedtest.h"

namespace cubicleos::minisql {

namespace {

struct TestDef {
    int id;
    const char *label;
};

const TestDef kTests[] = {
    {100, "autocommit INSERTs"},
    {110, "ordered INSERTs in a transaction"},
    {120, "unordered INSERTs in a transaction"},
    {130, "range SELECTs without index"},
    {140, "LIKE SELECTs, full scan"},
    {142, "SELECT ... ORDER BY"},
    {145, "SELECT ... ORDER BY ... LIMIT"},
    {150, "CREATE INDEX"},
    {160, "point SELECTs via rowid"},
    {161, "point SELECTs via primary key"},
    {170, "cold point SELECTs via index"},
    {180, "indexed UPDATEs in a transaction"},
    {190, "autocommit UPDATEs via rowid"},
    {210, "autocommit text UPDATEs, cold pages"},
    {230, "autocommit sparse UPDATEs"},
    {240, "one UPDATE over the whole table"},
    {250, "repeated full-table count(*)"},
    {260, "aggregates without index"},
    {270, "two-table JOIN via primary key"},
    {280, "JOIN with GROUP BY, cold"},
    {290, "GROUP BY over cold table"},
    {300, "batched INSERTs into fresh table"},
    {310, "LIKE prefix scans, cold"},
    {320, "mass DELETE and reinsert"},
    {400, "full scan in rowid order"},
    {410, "full index scan, cold"},
    {500, "multi-row VALUES INSERTs"},
    {510, "autocommit text rewrites, cold"},
    {520, "batched text rewrites"},
    {980, "PRAGMA integrity_check"},
    {990, "ANALYZE-style statistics scan"},
};

} // namespace

Speedtest::Speedtest(Database *db, int scale, uint64_t seed)
    : db_(db), scale_(scale < 10 ? 10 : scale), prng_(seed)
{
}

const std::vector<int> &
Speedtest::queryIds()
{
    static const std::vector<int> ids = [] {
        std::vector<int> v;
        for (const auto &t : kTests)
            v.push_back(t.id);
        return v;
    }();
    return ids;
}

const char *
Speedtest::labelOf(int id)
{
    for (const auto &t : kTests) {
        if (t.id == id)
            return t.label;
    }
    return "unknown";
}

uint64_t
Speedtest::execCount(const std::string &sql)
{
    const ResultSet rs = db_->exec(sql);
    if (!rs.rows.empty())
        return static_cast<uint64_t>(rs.scalarInt());
    return 0;
}

std::string
Speedtest::randomText(int len)
{
    static const char *kWords[] = {
        "lorem", "ipsum", "dolor", "sit",  "amet", "magna",
        "quis",  "nulla", "vitae", "justo"};
    std::string s;
    while (static_cast<int>(s.size()) < len) {
        if (!s.empty())
            s.push_back(' ');
        s += kWords[prng_.nextBelow(10)];
    }
    s.resize(static_cast<std::size_t>(len));
    return s;
}

SpeedtestResult
Speedtest::run(int id)
{
    SpeedtestResult res;
    res.id = id;
    res.label = labelOf(id);
    const int n = scale_;
    // A "cold" span: ids spread over the whole big table so lookups
    // miss the page cache; a "hot" span stays within a few pages.
    auto rnd = [&](int64_t bound) {
        return prng_.nextInRange(1, bound);
    };

    switch (id) {
      case 100: {
        // Autocommit inserts: one journal + fsync round per row.
        db_->exec("CREATE TABLE t1 (a INTEGER PRIMARY KEY, b INTEGER, "
                  "c TEXT)");
        for (int i = 1; i <= n / 10; ++i) {
            db_->exec("INSERT INTO t1 VALUES (" + std::to_string(i) +
                      "," + std::to_string(rnd(1000000)) + ",'" +
                      randomText(40) + "')");
            ++res.rowsTouched;
        }
        break;
      }
      case 110: {
        db_->exec("CREATE TABLE t2 (a INTEGER PRIMARY KEY, b INTEGER, "
                  "c TEXT)");
        db_->exec("BEGIN");
        for (int i = 1; i <= n; ++i) {
            db_->exec("INSERT INTO t2 VALUES (" + std::to_string(i) +
                      "," + std::to_string(rnd(1000000)) + ",'" +
                      randomText(40) + "')");
            ++res.rowsTouched;
        }
        db_->exec("COMMIT");
        break;
      }
      case 120: {
        db_->exec("CREATE TABLE t3 (a INTEGER PRIMARY KEY, b INTEGER, "
                  "c TEXT)");
        db_->exec("BEGIN");
        // Unordered primary keys: random page targets, more splits.
        for (int i = 1; i <= n; ++i) {
            const int64_t key = (static_cast<int64_t>(i) * 7919) % n + 1;
            db_->exec("INSERT INTO t3 VALUES (" +
                      std::to_string(key * 1000 + i) + "," +
                      std::to_string(rnd(1000000)) + ",'" +
                      randomText(40) + "')");
            ++res.rowsTouched;
        }
        db_->exec("COMMIT");
        break;
      }
      case 130: {
        for (int i = 0; i < 10; ++i) {
            const int64_t lo = rnd(1000000);
            res.rowsTouched += execCount(
                "SELECT count(*) FROM t2 WHERE b BETWEEN " +
                std::to_string(lo) + " AND " +
                std::to_string(lo + 100000));
        }
        break;
      }
      case 140: {
        for (int i = 0; i < 5; ++i) {
            res.rowsTouched += execCount(
                "SELECT count(*) FROM t2 WHERE c LIKE '%ipsum%'");
        }
        break;
      }
      case 142: {
        const auto rs = db_->exec(
            "SELECT a, b FROM t2 WHERE a <= " + std::to_string(n / 4) +
            " ORDER BY b");
        res.rowsTouched = rs.rows.size();
        break;
      }
      case 145: {
        for (int i = 0; i < 10; ++i) {
            const auto rs = db_->exec(
                "SELECT a, b FROM t2 ORDER BY b DESC LIMIT 10");
            res.rowsTouched += rs.rows.size();
        }
        break;
      }
      case 150: {
        db_->exec("CREATE INDEX t2b ON t2(b)");
        db_->exec("CREATE INDEX t3b ON t3(b)");
        res.rowsTouched = static_cast<uint64_t>(2 * n);
        break;
      }
      case 160: {
        db_->exec("BEGIN");
        for (int i = 0; i < n; ++i) {
            // Hot band: the same few pages stay cached.
            res.rowsTouched += execCount(
                "SELECT count(*) FROM t2 WHERE rowid = " +
                std::to_string(rnd(64)));
        }
        db_->exec("COMMIT");
        break;
      }
      case 161: {
        db_->exec("BEGIN");
        for (int i = 0; i < n; ++i) {
            res.rowsTouched += execCount(
                "SELECT count(*) FROM t2 WHERE a = " +
                std::to_string(rnd(64)));
        }
        db_->exec("COMMIT");
        break;
      }
      case 170: {
        // Cold index lookups across the whole key space: most pages
        // come from the file, every probe crosses the OS interface.
        for (int i = 0; i < n; ++i) {
            res.rowsTouched += execCount(
                "SELECT count(*) FROM t2 WHERE b = " +
                std::to_string(rnd(1000000)));
        }
        break;
      }
      case 180: {
        db_->exec("BEGIN");
        for (int i = 0; i < n / 5; ++i) {
            res.rowsTouched += execCount(
                "UPDATE t2 SET b = b + 1 WHERE a = " +
                std::to_string(rnd(64)));
        }
        db_->exec("COMMIT");
        break;
      }
      case 190: {
        for (int i = 0; i < n / 10; ++i) {
            res.rowsTouched += execCount(
                "UPDATE t2 SET b = b + 1 WHERE rowid = " +
                std::to_string(rnd(64)));
        }
        break;
      }
      case 210: {
        for (int i = 0; i < n / 10; ++i) {
            res.rowsTouched += execCount(
                "UPDATE t2 SET c = '" + randomText(40) +
                "' WHERE a = " + std::to_string(rnd(n)));
        }
        break;
      }
      case 230: {
        for (int i = 0; i < n / 10; ++i) {
            res.rowsTouched += execCount(
                "UPDATE t3 SET b = b + 1 WHERE a = " +
                std::to_string(rnd(n) * 1000 + rnd(n)));
        }
        break;
      }
      case 240: {
        res.rowsTouched =
            execCount("UPDATE t2 SET b = b + 1 WHERE a > 0");
        break;
      }
      case 250: {
        db_->exec("BEGIN");
        for (int i = 0; i < 10; ++i)
            res.rowsTouched += execCount("SELECT count(*) FROM t2");
        db_->exec("COMMIT");
        break;
      }
      case 260: {
        for (int i = 0; i < 10; ++i) {
            const auto rs = db_->exec(
                "SELECT min(b), max(b), avg(b) FROM t3");
            res.rowsTouched += rs.rows.size();
        }
        break;
      }
      case 270: {
        db_->exec("BEGIN");
        for (int i = 0; i < 10; ++i) {
            const int64_t lo = rnd(n - 100);
            res.rowsTouched += execCount(
                "SELECT count(*) FROM t1 JOIN t2 ON t2.a = t1.a "
                "WHERE t1.a BETWEEN " +
                std::to_string(lo % (n / 10)) + " AND " +
                std::to_string(lo % (n / 10) + 20));
        }
        db_->exec("COMMIT");
        break;
      }
      case 280: {
        const auto rs = db_->exec(
            "SELECT t2.a % 10, count(*), sum(t2.b) FROM t2 "
            "JOIN t3 ON t3.b = t2.b GROUP BY t2.a % 10");
        res.rowsTouched = rs.rows.size();
        break;
      }
      case 290: {
        for (int i = 0; i < 5; ++i) {
            const auto rs = db_->exec(
                "SELECT a % 97, count(*), sum(b) FROM t3 "
                "GROUP BY a % 97");
            res.rowsTouched += rs.rows.size();
        }
        break;
      }
      case 300: {
        db_->exec("CREATE TABLE t4 (a INTEGER PRIMARY KEY, b INTEGER)");
        db_->exec("BEGIN");
        for (int i = 1; i <= n; ++i) {
            db_->exec("INSERT INTO t4 VALUES (" + std::to_string(i) +
                      "," + std::to_string(rnd(1000)) + ")");
            ++res.rowsTouched;
        }
        db_->exec("COMMIT");
        break;
      }
      case 310: {
        static const char *kPrefixes[] = {"lo", "ip", "do", "ma", "qu"};
        for (int i = 0; i < n / 20; ++i) {
            res.rowsTouched += execCount(
                "SELECT count(*) FROM t2 WHERE c LIKE '" +
                std::string(kPrefixes[prng_.nextBelow(5)]) + "%'");
        }
        break;
      }
      case 320: {
        db_->exec("BEGIN");
        res.rowsTouched += execCount(
            "DELETE FROM t3 WHERE b < 500000");
        db_->exec("COMMIT");
        break;
      }
      case 400: {
        db_->exec("BEGIN");
        res.rowsTouched += execCount("SELECT count(*) FROM t2 "
                                     "WHERE rowid > 0");
        res.rowsTouched +=
            static_cast<uint64_t>(db_->exec("SELECT sum(b) FROM t2")
                                      .scalarInt() != 0);
        db_->exec("COMMIT");
        break;
      }
      case 410: {
        for (int i = 0; i < 5; ++i) {
            res.rowsTouched += execCount(
                "SELECT count(*) FROM t2 WHERE b >= 0");
        }
        break;
      }
      case 500: {
        db_->exec("CREATE TABLE t5 (a INTEGER, b TEXT)");
        db_->exec("BEGIN");
        for (int i = 0; i < n / 10; ++i) {
            std::string sql = "INSERT INTO t5 VALUES ";
            for (int j = 0; j < 10; ++j) {
                if (j)
                    sql += ",";
                sql += "(" + std::to_string(i * 10 + j) + ",'" +
                       randomText(20) + "')";
            }
            db_->exec(sql);
            res.rowsTouched += 10;
        }
        db_->exec("COMMIT");
        break;
      }
      case 510: {
        for (int i = 0; i < n / 20; ++i) {
            res.rowsTouched += execCount(
                "UPDATE t5 SET b = '" + randomText(24) +
                "' WHERE a = " + std::to_string(rnd(n)));
        }
        break;
      }
      case 520: {
        db_->exec("BEGIN");
        for (int i = 0; i < n / 20; ++i) {
            res.rowsTouched += execCount(
                "UPDATE t5 SET b = '" + randomText(24) +
                "' WHERE a = " + std::to_string(rnd(64)));
        }
        db_->exec("COMMIT");
        break;
      }
      case 980: {
        const auto rs = db_->exec("PRAGMA integrity_check");
        if (rs.rows.empty() || rs.rows[0][0].asText() != "ok")
            throw SqlError("integrity check failed");
        res.rowsTouched = 1;
        break;
      }
      case 990: {
        const auto rs = db_->exec("PRAGMA analyze");
        res.rowsTouched = rs.rows.size();
        break;
      }
      default:
        throw SqlError("unknown speedtest id " + std::to_string(id));
    }
    return res;
}

std::vector<SpeedtestResult>
Speedtest::runAll()
{
    std::vector<SpeedtestResult> out;
    for (int id : queryIds())
        out.push_back(run(id));
    return out;
}

} // namespace cubicleos::minisql
