/**
 * @file
 * The minisql database facade: the public API applications use.
 *
 * A Database binds to a FileApi (CubicleOS deployment, microkernel
 * baseline, or direct) and executes SQL text, mirroring how the paper
 * runs unmodified SQLite over different OS substrates.
 */

#ifndef CUBICLEOS_APPS_MINISQL_DB_H_
#define CUBICLEOS_APPS_MINISQL_DB_H_

#include <memory>
#include <string>
#include <vector>

#include "apps/minisql/catalog.h"
#include "apps/minisql/parser.h"

namespace cubicleos::minisql {

/** Query result: column names and rows of values. */
struct ResultSet {
    std::vector<std::string> columns;
    std::vector<Row> rows;

    /** Convenience: the single int value of a 1×1 result. */
    int64_t scalarInt() const
    {
        return rows.empty() || rows[0].empty() ? 0 : rows[0][0].asInt();
    }
};

/** An embedded SQL database over one file. */
class Database {
  public:
    /**
     * @param fs file API binding
     * @param path database file path
     * @param cache_pages pager LRU capacity (SQLite default ~2000;
     *        the Fig. 6 cache dynamics depend on this)
     */
    Database(libos::FileApi *fs, std::string path,
             std::size_t cache_pages = 256, DbAllocator mem = {});
    ~Database();

    Database(const Database &) = delete;
    Database &operator=(const Database &) = delete;

    /** Opens/creates the database. @return 0 or a VfsErr. */
    int open(bool create = true);

    /**
     * Parses and executes @p sql (possibly several statements);
     * returns the result of the last statement.
     * @throws SqlError on parse or execution errors.
     */
    ResultSet exec(const std::string &sql);

    /** Pager statistics (cache hit rates etc.). */
    const PagerStats &pagerStats() const { return pager_->stats(); }
    void resetPagerStats() { pager_->resetStats(); }

    Pager &pager() { return *pager_; }
    Catalog &catalog() { return catalog_; }

  private:
    class Executor;

    std::unique_ptr<Pager> pager_;
    Catalog catalog_;
    bool explicitTxn_ = false;
};

} // namespace cubicleos::minisql

#endif // CUBICLEOS_APPS_MINISQL_DB_H_
