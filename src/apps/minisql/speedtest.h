/**
 * @file
 * speedtest1-equivalent workload for minisql (paper §6.4, Fig. 6).
 *
 * Reproduces the structure of SQLite's speedtest1 benchmark: a series
 * of numbered tests — the same IDs that label the x-axis of the
 * paper's Fig. 6 — covering INSERTs (batched and autocommit), point
 * and range SELECTs, LIKE scans, index creation and use, UPDATEs,
 * DELETEs, JOINs, GROUP BY, ORDER BY and integrity checking.
 *
 * The tests split into the paper's two populations:
 *  - cache-friendly tests that batch statements in transactions and
 *    touch hot pages (low CubicleOS overhead, ≈1.8×);
 *  - OS-intensive tests that run autocommit statements (journal +
 *    fsync churn) or scan far beyond the page cache (high overhead,
 *    ≈8×, dominated by trap-and-map and cubicle switches).
 */

#ifndef CUBICLEOS_APPS_MINISQL_SPEEDTEST_H_
#define CUBICLEOS_APPS_MINISQL_SPEEDTEST_H_

#include <string>
#include <vector>

#include "apps/minisql/db.h"
#include "hw/prng.h"

namespace cubicleos::minisql {

/** One speedtest query's outcome. */
struct SpeedtestResult {
    int id = 0;
    std::string label;
    uint64_t rowsTouched = 0;
};

/** The speedtest1-style workload driver. */
class Speedtest {
  public:
    /**
     * @param db target database (already open)
     * @param scale row-count scale (speedtest1's --size analogue;
     *        1000 keeps a full run in the low seconds)
     */
    explicit Speedtest(Database *db, int scale = 1000,
                       uint64_t seed = 2021);

    /** The test IDs, in execution order (Fig. 6 x-axis). */
    static const std::vector<int> &queryIds();

    /** Short description of one test. */
    static const char *labelOf(int id);

    /**
     * Runs one test. Tests build on earlier ones; call in queryIds()
     * order (runAll() does).
     */
    SpeedtestResult run(int id);

    /** Runs the whole suite in order. */
    std::vector<SpeedtestResult> runAll();

  private:
    uint64_t execCount(const std::string &sql);
    std::string randomText(int len);

    Database *db_;
    int scale_;
    hw::Prng prng_;
};

} // namespace cubicleos::minisql

#endif // CUBICLEOS_APPS_MINISQL_SPEEDTEST_H_
