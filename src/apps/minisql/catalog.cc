#include "apps/minisql/catalog.h"

#include <cstring>
#include <sstream>

namespace cubicleos::minisql {

namespace {

std::vector<uint8_t>
objKey(int64_t obj_id)
{
    std::vector<uint8_t> key;
    Value(obj_id).encodeKey(&key);
    return key;
}

/** Serialises column definitions: "name:type:pk;...". */
std::string
encodeColumns(const std::vector<ColumnDef> &cols)
{
    std::ostringstream os;
    for (const auto &c : cols) {
        os << c.name << ':' << static_cast<int>(c.type) << ':'
           << (c.primaryKey ? 1 : 0) << ';';
    }
    return os.str();
}

std::vector<ColumnDef>
decodeColumns(const std::string &spec)
{
    std::vector<ColumnDef> cols;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t c1 = spec.find(':', pos);
        const std::size_t c2 = spec.find(':', c1 + 1);
        const std::size_t end = spec.find(';', c2 + 1);
        ColumnDef col;
        col.name = spec.substr(pos, c1 - pos);
        col.type = static_cast<ValueType>(
            std::stoi(spec.substr(c1 + 1, c2 - c1 - 1)));
        col.primaryKey = spec.substr(c2 + 1, end - c2 - 1) == "1";
        cols.push_back(std::move(col));
        pos = end + 1;
    }
    return cols;
}

} // namespace

void
Catalog::load()
{
    tables_.clear();
    indexes_.clear();
    maxObjId_ = 0;

    if (pager_->schemaRoot() == 0) {
        const bool auto_txn = !pager_->inTransaction();
        if (auto_txn)
            pager_->begin();
        pager_->setSchemaRoot(BTree::create(pager_));
        if (auto_txn)
            pager_->commit();
        return;
    }

    BTree schema(pager_, pager_->schemaRoot());
    auto cur = schema.cursor();
    for (cur.seekFirst(); cur.valid(); cur.next()) {
        const auto val = cur.value();
        Row row = decodeRow(val.data(), val.size());
        if (row.empty())
            continue;
        const std::string kind = row[0].asText();
        if (kind == "t" && row.size() >= 5) {
            TableDef def;
            def.name = row[1].asText();
            def.columns = decodeColumns(row[2].asText());
            def.root = static_cast<uint32_t>(row[3].asInt());
            def.rowidColumn = static_cast<int>(row[4].asInt());
            if (row.size() >= 6)
                def.objId = row[5].asInt();
            maxObjId_ = std::max(maxObjId_, def.objId);
            tables_.emplace(def.name, std::move(def));
        } else if (kind == "i" && row.size() >= 6) {
            IndexDef def;
            def.name = row[1].asText();
            def.table = row[2].asText();
            def.column = row[3].asText();
            def.root = static_cast<uint32_t>(row[4].asInt());
            def.unique = row[5].asInt() != 0;
            if (row.size() >= 7)
                def.objId = row[6].asInt();
            maxObjId_ = std::max(maxObjId_, def.objId);
            indexes_.emplace(def.name, std::move(def));
        }
    }
    // Resolve index column positions.
    for (auto &[name, idx] : indexes_) {
        if (TableDef *t = table(idx.table))
            idx.columnIndex = t->columnIndexOf(idx.column);
    }
}

TableDef *
Catalog::table(const std::string &name)
{
    auto it = tables_.find(name);
    return it == tables_.end() ? nullptr : &it->second;
}

IndexDef *
Catalog::index(const std::string &name)
{
    auto it = indexes_.find(name);
    return it == indexes_.end() ? nullptr : &it->second;
}

std::vector<IndexDef *>
Catalog::indexesOn(const std::string &table)
{
    std::vector<IndexDef *> out;
    for (auto &[name, idx] : indexes_) {
        if (idx.table == table)
            out.push_back(&idx);
    }
    return out;
}

int64_t
Catalog::nextObjId()
{
    return ++maxObjId_;
}

void
Catalog::persistTable(TableDef *def)
{
    Row row;
    row.push_back(Value(std::string("t")));
    row.push_back(Value(def->name));
    row.push_back(Value(encodeColumns(def->columns)));
    row.push_back(Value(static_cast<int64_t>(def->root)));
    row.push_back(Value(static_cast<int64_t>(def->rowidColumn)));
    row.push_back(Value(def->objId));
    BTree schema(pager_, pager_->schemaRoot());
    schema.insert(objKey(def->objId), encodeRow(row));
}

void
Catalog::persistIndex(IndexDef *def)
{
    Row row;
    row.push_back(Value(std::string("i")));
    row.push_back(Value(def->name));
    row.push_back(Value(def->table));
    row.push_back(Value(def->column));
    row.push_back(Value(static_cast<int64_t>(def->root)));
    row.push_back(Value(static_cast<int64_t>(def->unique ? 1 : 0)));
    row.push_back(Value(def->objId));
    BTree schema(pager_, pager_->schemaRoot());
    schema.insert(objKey(def->objId), encodeRow(row));
}

void
Catalog::eraseObject(int64_t obj_id)
{
    BTree schema(pager_, pager_->schemaRoot());
    schema.erase(objKey(obj_id));
}

TableDef *
Catalog::createTable(const CreateTableStmt &stmt)
{
    if (TableDef *existing = table(stmt.name)) {
        if (stmt.ifNotExists)
            return existing;
        throw SqlError("table '" + stmt.name + "' already exists");
    }
    if (stmt.columns.empty())
        throw SqlError("table needs at least one column");

    TableDef def;
    def.name = stmt.name;
    def.columns = stmt.columns;
    for (std::size_t i = 0; i < stmt.columns.size(); ++i) {
        if (stmt.columns[i].primaryKey &&
            stmt.columns[i].type == ValueType::kInt) {
            def.rowidColumn = static_cast<int>(i);
        }
    }
    def.root = BTree::create(pager_);
    def.objId = nextObjId();
    def.nextRowid = 1;
    auto [it, ok] = tables_.emplace(def.name, std::move(def));
    persistTable(&it->second);
    return &it->second;
}

IndexDef *
Catalog::createIndex(const CreateIndexStmt &stmt)
{
    if (index(stmt.name))
        throw SqlError("index '" + stmt.name + "' already exists");
    TableDef *tbl = table(stmt.table);
    if (!tbl)
        throw SqlError("no such table: " + stmt.table);
    const int col = tbl->columnIndexOf(stmt.column);
    if (col < 0)
        throw SqlError("no such column: " + stmt.column);

    IndexDef def;
    def.name = stmt.name;
    def.table = stmt.table;
    def.column = stmt.column;
    def.columnIndex = col;
    def.unique = stmt.unique;
    def.root = BTree::create(pager_);
    def.objId = nextObjId();
    auto [it, ok] = indexes_.emplace(def.name, std::move(def));
    persistIndex(&it->second);
    return &it->second;
}

void
Catalog::freeTree(uint32_t root)
{
    // Free children first (post-order), then the page itself. Node
    // layout knowledge is limited to "interior cells carry a child at
    // offset +2", mirrored from btree.cc.
    DbPage *page = pager_->fetch(root);
    const uint8_t type = page->data[0];
    uint16_t ncells;
    std::memcpy(&ncells, page->data + 2, 2);
    if (type == 2) { // interior
        std::vector<uint32_t> children;
        for (uint16_t i = 0; i < ncells; ++i) {
            uint16_t off;
            std::memcpy(&off, page->data + 12 + 2 * i, 2);
            uint32_t child;
            std::memcpy(&child, page->data + off + 2, 4);
            children.push_back(child);
        }
        uint32_t rightmost;
        std::memcpy(&rightmost, page->data + 8, 4);
        children.push_back(rightmost);
        pager_->release(page);
        for (uint32_t child : children)
            freeTree(child);
    } else {
        pager_->release(page);
    }
    pager_->freePage(root);
}

void
Catalog::dropTable(const std::string &name)
{
    TableDef *tbl = table(name);
    if (!tbl)
        throw SqlError("no such table: " + name);
    for (IndexDef *idx : indexesOn(name)) {
        freeTree(idx->root);
        eraseObject(idx->objId);
        indexes_.erase(idx->name);
    }
    freeTree(tbl->root);
    eraseObject(tbl->objId);
    tables_.erase(name);
}

} // namespace cubicleos::minisql
