/**
 * @file
 * The pager: a page cache with transactions over a FileApi database
 * file, modelled on SQLite's pager.
 *
 * Responsibilities:
 *  - page-granular reads and writes against the database file;
 *  - an LRU page cache (the cache whose hit rate separates the two
 *    query populations of the paper's Fig. 6);
 *  - a rollback journal providing atomic transactions: the original
 *    content of every page first modified in a transaction is written
 *    to a side journal; COMMIT flushes dirty pages and deletes the
 *    journal; ROLLBACK restores the originals;
 *  - page allocation with an intrusive free list.
 *
 * All page buffers are allocated through the caller-supplied allocator
 * so they live in the application cubicle's memory and move through
 * windows on every file operation.
 */

#ifndef CUBICLEOS_APPS_MINISQL_PAGER_H_
#define CUBICLEOS_APPS_MINISQL_PAGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "libos/fileapi.h"

namespace cubicleos::minisql {

/** Database page size (matches the simulated machine's pages). */
inline constexpr std::size_t kDbPageSize = 4096;

/** Memory hooks so I/O buffers live in cubicle memory. */
struct DbAllocator {
    std::function<void *(std::size_t)> alloc = [](std::size_t n) {
        return ::operator new(n);
    };
    std::function<void(void *)> free = [](void *p) {
        ::operator delete(p);
    };
};

/** A pinned database page. */
struct DbPage {
    uint32_t pgno = 0;
    uint8_t *data = nullptr;
    bool dirty = false;
    bool journaled = false;
    int pins = 0;
    uint64_t lastUse = 0;
};

/** Pager statistics (cache behaviour drives the Fig. 6 split). */
struct PagerStats {
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t pageReads = 0;   ///< file reads
    uint64_t pageWrites = 0;  ///< file writes (incl. journal)
    uint64_t evictions = 0;
};

/**
 * Page cache + transaction manager over one database file.
 */
class Pager {
  public:
    /**
     * @param fs file API (bound to the deployment under test)
     * @param path database file path
     * @param cache_pages LRU capacity in pages
     */
    Pager(libos::FileApi *fs, std::string path, std::size_t cache_pages,
          DbAllocator alloc = {});
    ~Pager();

    Pager(const Pager &) = delete;
    Pager &operator=(const Pager &) = delete;

    /** Opens or creates the database file. @return 0 or a VfsErr. */
    int open(bool create);

    /** Fetches and pins a page. @return nullptr on I/O error. */
    DbPage *fetch(uint32_t pgno);
    /** Unpins a page previously fetched. */
    void release(DbPage *page);
    /**
     * Marks a pinned page dirty, journaling its pre-image if this is
     * its first modification in the current transaction.
     */
    void markDirty(DbPage *page);

    /** Allocates a fresh page (from the free list or file growth). */
    uint32_t allocatePage();
    /** Returns a page to the free list. */
    void freePage(uint32_t pgno);

    /** Begins an explicit transaction. */
    void begin();
    /** Commits: flush dirty pages, drop the journal. @return 0/err. */
    int commit();
    /** Rolls back to the state at begin(). */
    int rollback();
    bool inTransaction() const { return inTxn_; }

    /** Flushes every dirty page to the file. */
    int flushAll();

    /**
     * Crash teardown: forgets the open file descriptors and any
     * in-flight transaction WITHOUT flushing or closing. After the
     * owning cubicle crashed, the fds are stale and the on-file state
     * is whatever the last completed write left — including a hot
     * journal, which the next open() rolls back (crash recovery). The
     * destructor then only frees buffers.
     */
    void abandon()
    {
        fd_ = -1;
        journalFd_ = -1;
        inTxn_ = false;
    }

    // Header slots usable by the database layer (persisted in page 1).
    uint32_t schemaRoot() const;
    void setSchemaRoot(uint32_t pgno);

    uint32_t pageCount() const { return pageCount_; }
    const PagerStats &stats() const { return stats_; }
    void resetStats() { stats_ = PagerStats{}; }

  private:
    struct Header;

    Header *header();
    void journalPage(const DbPage &page);
    int writePage(const DbPage &page);
    void evictIfNeeded();
    uint8_t *allocBuffer();
    void freeBuffer(uint8_t *buf);

    libos::FileApi *fs_;
    std::string path_;
    std::string journalPath_;
    std::size_t cachePages_;
    DbAllocator mem_;

    int fd_ = -1;
    int journalFd_ = -1;
    bool inTxn_ = false;
    bool autoTxn_ = false;
    uint32_t pageCount_ = 0;
    uint64_t useTick_ = 0;

    std::unordered_map<uint32_t, std::unique_ptr<DbPage>> cache_;
    DbPage *headerPage_ = nullptr; ///< page 1, pinned for the lifetime
    PagerStats stats_;

    /** Pages whose pre-image is already journaled this transaction. */
    std::unordered_set<uint32_t> journaledSet_;
    uint8_t *journalBuf_ = nullptr; ///< staging record (cubicle memory)
    uint64_t journalSize_ = 0;
};

} // namespace cubicleos::minisql

#endif // CUBICLEOS_APPS_MINISQL_PAGER_H_
