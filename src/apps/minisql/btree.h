/**
 * @file
 * B+tree over the pager, modelled on SQLite's btree layer.
 *
 * Keys are arbitrary byte strings compared with memcmp (the value
 * layer's order-preserving encoding makes that equal SQL ordering);
 * values are byte strings. Leaf pages are linked left-to-right for
 * cursor scans. The root page number is stable across splits (the
 * root's content is copied down, as in SQLite), so catalog entries
 * never need fixing up.
 *
 * Deletion is by cell removal without rebalancing: pages reclaim
 * space on subsequent inserts via compaction. This matches the
 * workload behaviour the evaluation needs (speedtest1's DELETE tests
 * measure I/O, not space reuse) and keeps the structure verifiable
 * with validate().
 */

#ifndef CUBICLEOS_APPS_MINISQL_BTREE_H_
#define CUBICLEOS_APPS_MINISQL_BTREE_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "apps/minisql/pager.h"

namespace cubicleos::minisql {

/** Maximum key + value bytes per entry (2 entries must fit a page). */
inline constexpr std::size_t kMaxEntryBytes = 1800;

/** A B+tree keyed by memcmp-ordered byte strings. */
class BTree {
  public:
    using Bytes = std::span<const uint8_t>;

    /** Attaches to an existing tree rooted at @p root. */
    BTree(Pager *pager, uint32_t root);

    /** Allocates a fresh empty tree; returns its root page. */
    static uint32_t create(Pager *pager);

    uint32_t root() const { return root_; }

    /**
     * Inserts or replaces an entry.
     * @return true if inserted, false if an existing key was replaced.
     */
    bool insert(Bytes key, Bytes value);

    /** Removes an entry. @return true if the key existed. */
    bool erase(Bytes key);

    /** Point lookup. @return true and fills @p value if found. */
    bool find(Bytes key, std::vector<uint8_t> *value);

    /** Number of entries (full scan). */
    uint64_t countEntries();

    /**
     * Structural integrity check: ordering within and across pages,
     * separator correctness, reachability of all leaves via sibling
     * links. Powers the PRAGMA integrity_check analogue.
     */
    bool validate(std::string *error);

    /**
     * A forward cursor over the tree.
     *
     * Cursors are not stable across modifications of the tree.
     */
    class Cursor {
      public:
        /** Positions at the first entry. */
        void seekFirst();
        /**
         * Positions at the first entry with key >= @p key.
         * @param exact set to true if the key matches exactly.
         */
        void seek(Bytes key, bool *exact = nullptr);
        bool valid() const { return valid_; }
        void next();
        std::vector<uint8_t> key() const;
        std::vector<uint8_t> value() const;

      private:
        friend class BTree;
        explicit Cursor(BTree *tree) : tree_(tree) {}
        void skipEmptyLeaves();

        BTree *tree_;
        uint32_t leaf_ = 0;
        uint32_t index_ = 0;
        bool valid_ = false;
    };

    Cursor cursor() { return Cursor(this); }

  private:
    struct Split {
        std::vector<uint8_t> sepKey; ///< max key of the left sibling
        uint32_t rightPage;
    };

    std::optional<Split> insertInto(uint32_t pgno, Bytes key,
                                    Bytes value, bool *inserted);
    void handleRootSplit(const Split &split);
    uint32_t findLeaf(Bytes key) const;
    bool validatePage(uint32_t pgno, const std::vector<uint8_t> *lo,
                      const std::vector<uint8_t> *hi, int depth,
                      int *leaf_depth, std::string *error);

    Pager *pager_;
    uint32_t root_;
};

} // namespace cubicleos::minisql

#endif // CUBICLEOS_APPS_MINISQL_BTREE_H_
