#include "apps/minisql/pager.h"

#include <cassert>
#include <cstring>

#include "libos/vfs_types.h"

namespace cubicleos::minisql {

using libos::VfsErr;

/** On-disk header, stored at the start of page 1. */
struct Pager::Header {
    char magic[8];
    uint32_t pageCount;
    uint32_t freelistHead;
    uint32_t schemaRoot;
    uint32_t reserved;
};

namespace {
constexpr char kMagic[8] = {'M', 'I', 'N', 'I', 'S', 'Q', 'L', '1'};
constexpr std::size_t kJournalRec = 4 + kDbPageSize;

uint64_t
pageOffset(uint32_t pgno)
{
    return static_cast<uint64_t>(pgno - 1) * kDbPageSize;
}
} // namespace

Pager::Pager(libos::FileApi *fs, std::string path,
             std::size_t cache_pages, DbAllocator alloc)
    : fs_(fs), path_(std::move(path)), journalPath_(path_ + "-journal"),
      cachePages_(cache_pages < 4 ? 4 : cache_pages),
      mem_(std::move(alloc))
{
}

Pager::~Pager()
{
    if (fd_ >= 0) {
        if (!inTxn_)
            flushAll();
        fs_->close(fd_);
    }
    if (journalFd_ >= 0) {
        // Destroyed mid-transaction: keep the journal on disk so the
        // next open performs hot-journal recovery (crash semantics).
        fs_->close(journalFd_);
        if (!inTxn_)
            fs_->unlink(journalPath_.c_str());
    }
    for (auto &[pgno, page] : cache_)
        freeBuffer(page->data);
    if (journalBuf_)
        mem_.free(journalBuf_);
}

uint8_t *
Pager::allocBuffer()
{
    return static_cast<uint8_t *>(mem_.alloc(kDbPageSize));
}

void
Pager::freeBuffer(uint8_t *buf)
{
    mem_.free(buf);
}

Pager::Header *
Pager::header()
{
    return reinterpret_cast<Header *>(headerPage_->data);
}

int
Pager::open(bool create)
{
    int flags = libos::kRdWr;
    if (create)
        flags |= libos::kCreate;
    fd_ = fs_->open(path_.c_str(), flags);
    if (fd_ < 0)
        return fd_;

    libos::VfsStat st;
    const int rc = fs_->fstat(fd_, &st);
    if (rc < 0)
        return rc;

    if (st.size == 0) {
        // Fresh database: lay down the header page.
        pageCount_ = 1;
        auto page = std::make_unique<DbPage>();
        page->pgno = 1;
        page->data = allocBuffer();
        std::memset(page->data, 0, kDbPageSize);
        auto *hdr = reinterpret_cast<Header *>(page->data);
        std::memcpy(hdr->magic, kMagic, 8);
        hdr->pageCount = 1;
        page->pins = 1;
        headerPage_ = page.get();
        cache_.emplace(1, std::move(page));
        const int wrc = writePage(*headerPage_);
        if (wrc < 0)
            return wrc;
        return 0;
    }

    headerPage_ = fetch(1);
    if (!headerPage_)
        return VfsErr::kErrIo;
    if (std::memcmp(header()->magic, kMagic, 8) != 0)
        return VfsErr::kErrInval;
    pageCount_ = header()->pageCount;

    // A leftover journal means a previous run aborted mid-transaction;
    // roll it back (hot-journal recovery).
    libos::VfsStat jst;
    if (fs_->stat(journalPath_.c_str(), &jst) == 0 && jst.size > 0) {
        journalFd_ = fs_->open(journalPath_.c_str(), libos::kRdWr);
        if (journalFd_ >= 0) {
            inTxn_ = true;
            rollback();
        }
    }
    return 0;
}

DbPage *
Pager::fetch(uint32_t pgno)
{
    assert(pgno >= 1);
    auto it = cache_.find(pgno);
    if (it != cache_.end()) {
        ++stats_.cacheHits;
        it->second->pins++;
        it->second->lastUse = ++useTick_;
        return it->second.get();
    }

    ++stats_.cacheMisses;
    evictIfNeeded();

    auto page = std::make_unique<DbPage>();
    page->pgno = pgno;
    page->data = allocBuffer();
    page->pins = 1;
    page->lastUse = ++useTick_;

    const int64_t got =
        fs_->pread(fd_, page->data, kDbPageSize, pageOffset(pgno));
    ++stats_.pageReads;
    if (got < 0) {
        freeBuffer(page->data);
        return nullptr;
    }
    if (static_cast<std::size_t>(got) < kDbPageSize) {
        // Beyond EOF (freshly allocated page): zero-fill.
        std::memset(page->data + got, 0,
                    kDbPageSize - static_cast<std::size_t>(got));
    }
    DbPage *raw = page.get();
    cache_.emplace(pgno, std::move(page));
    return raw;
}

void
Pager::release(DbPage *page)
{
    assert(page && page->pins > 0);
    page->pins--;
}

void
Pager::markDirty(DbPage *page)
{
    assert(page->pins > 0);
    assert(inTxn_ && "modifications require a transaction");
    if (!page->journaled) {
        journalPage(*page);
        page->journaled = true;
        journaledSet_.insert(page->pgno);
    }
    page->dirty = true;
}

void
Pager::journalPage(const DbPage &page)
{
    if (journaledSet_.count(page.pgno))
        return; // pre-image already captured (page was evicted since)
    if (journalFd_ < 0) {
        journalFd_ = fs_->open(journalPath_.c_str(),
                               libos::kCreate | libos::kRdWr |
                                   libos::kTrunc);
        journalSize_ = 0;
        if (journalFd_ < 0)
            return;
    }
    if (!journalBuf_)
        journalBuf_ = static_cast<uint8_t *>(mem_.alloc(kJournalRec));
    std::memcpy(journalBuf_, &page.pgno, 4);
    std::memcpy(journalBuf_ + 4, page.data, kDbPageSize);
    fs_->pwrite(journalFd_, journalBuf_, kJournalRec, journalSize_);
    journalSize_ += kJournalRec;
    ++stats_.pageWrites;
}

int
Pager::writePage(const DbPage &page)
{
    const int64_t put =
        fs_->pwrite(fd_, page.data, kDbPageSize, pageOffset(page.pgno));
    ++stats_.pageWrites;
    return put == static_cast<int64_t>(kDbPageSize) ? 0
                                                    : VfsErr::kErrIo;
}

void
Pager::evictIfNeeded()
{
    while (cache_.size() >= cachePages_) {
        DbPage *victim = nullptr;
        for (auto &[pgno, page] : cache_) {
            if (page->pins > 0)
                continue;
            if (!victim || page->lastUse < victim->lastUse)
                victim = page.get();
        }
        if (!victim)
            return; // everything pinned; allow temporary overflow
        if (victim->dirty)
            writePage(*victim);
        ++stats_.evictions;
        freeBuffer(victim->data);
        cache_.erase(victim->pgno);
    }
}

uint32_t
Pager::allocatePage()
{
    assert(inTxn_);
    Header *hdr = header();
    if (hdr->freelistHead != 0) {
        const uint32_t pgno = hdr->freelistHead;
        DbPage *page = fetch(pgno);
        uint32_t next = 0;
        std::memcpy(&next, page->data, 4);
        markDirty(headerPage_);
        header()->freelistHead = next;
        markDirty(page);
        std::memset(page->data, 0, kDbPageSize);
        release(page);
        return pgno;
    }
    markDirty(headerPage_);
    header()->pageCount = ++pageCount_;
    return pageCount_;
}

void
Pager::freePage(uint32_t pgno)
{
    assert(inTxn_);
    DbPage *page = fetch(pgno);
    markDirty(page);
    std::memset(page->data, 0, kDbPageSize);
    std::memcpy(page->data, &header()->freelistHead, 4);
    release(page);
    markDirty(headerPage_);
    header()->freelistHead = pgno;
}

void
Pager::begin()
{
    assert(!inTxn_);
    // The journal file is created lazily on the first page
    // modification so read-only transactions cost no file churn.
    journalFd_ = -1;
    journalSize_ = 0;
    inTxn_ = true;
    journaledSet_.clear();
}

int
Pager::commit()
{
    assert(inTxn_);
    const int rc = flushAll();
    fs_->fsync(fd_);
    if (journalFd_ >= 0) {
        fs_->close(journalFd_);
        journalFd_ = -1;
        fs_->unlink(journalPath_.c_str());
    }
    for (auto &[pgno, page] : cache_)
        page->journaled = false;
    journaledSet_.clear();
    inTxn_ = false;
    return rc;
}

int
Pager::rollback()
{
    assert(inTxn_);
    if (journalFd_ >= 0) {
        if (!journalBuf_)
            journalBuf_ = static_cast<uint8_t *>(mem_.alloc(kJournalRec));
        libos::VfsStat st;
        uint64_t size = journalSize_;
        if (fs_->fstat(journalFd_, &st) == 0)
            size = st.size;
        for (uint64_t off = 0; off + kJournalRec <= size;
             off += kJournalRec) {
            if (fs_->pread(journalFd_, journalBuf_, kJournalRec, off) !=
                static_cast<int64_t>(kJournalRec)) {
                break;
            }
            uint32_t pgno = 0;
            std::memcpy(&pgno, journalBuf_, 4);
            if (pgno == 0)
                break;
            fs_->pwrite(fd_, journalBuf_ + 4, kDbPageSize,
                        pageOffset(pgno));
            // Refresh any cached copy.
            auto it = cache_.find(pgno);
            if (it != cache_.end()) {
                std::memcpy(it->second->data, journalBuf_ + 4,
                            kDbPageSize);
                it->second->dirty = false;
                it->second->journaled = false;
            }
        }
        fs_->close(journalFd_);
        journalFd_ = -1;
        fs_->unlink(journalPath_.c_str());
    }
    // Drop dirty non-journaled state and restore the header fields.
    for (auto &[pgno, page] : cache_) {
        page->journaled = false;
        page->dirty = false;
    }
    journaledSet_.clear();
    pageCount_ = header()->pageCount;
    inTxn_ = false;
    return 0;
}

int
Pager::flushAll()
{
    int rc = 0;
    for (auto &[pgno, page] : cache_) {
        if (page->dirty) {
            const int wrc = writePage(*page);
            if (wrc < 0)
                rc = wrc;
            else
                page->dirty = false;
        }
    }
    return rc;
}

uint32_t
Pager::schemaRoot() const
{
    return reinterpret_cast<const Header *>(headerPage_->data)
        ->schemaRoot;
}

void
Pager::setSchemaRoot(uint32_t pgno)
{
    markDirty(headerPage_);
    header()->schemaRoot = pgno;
}

} // namespace cubicleos::minisql
