/**
 * @file
 * Abstract syntax tree for the SQL subset.
 *
 * Supported statements: CREATE TABLE / CREATE [UNIQUE] INDEX / DROP
 * TABLE / INSERT / SELECT (single table or one inner join, WHERE,
 * GROUP BY, ORDER BY, LIMIT, aggregates) / UPDATE / DELETE / BEGIN /
 * COMMIT / ROLLBACK / PRAGMA.
 */

#ifndef CUBICLEOS_APPS_MINISQL_AST_H_
#define CUBICLEOS_APPS_MINISQL_AST_H_

#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "apps/minisql/value.h"

namespace cubicleos::minisql {

/** Expression node kinds. */
enum class ExprOp : uint8_t {
    kLiteral,
    kColumn,
    kStar, ///< '*' in select lists and count(*)
    kNeg,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kMod,
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kAnd,
    kOr,
    kNot,
    kLike,    ///< arg0 LIKE arg1 (literal pattern)
    kBetween, ///< arg0 BETWEEN arg1 AND arg2
    kIn,      ///< arg0 IN (arg1..argN)
    kCall,    ///< aggregate call: count/sum/avg/min/max
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** One expression node. */
struct Expr {
    ExprOp op = ExprOp::kLiteral;
    Value lit;          ///< kLiteral
    std::string table;  ///< kColumn: optional qualifier
    std::string column; ///< kColumn
    std::string func;   ///< kCall (lower-cased)
    std::vector<ExprPtr> args;

    static ExprPtr literal(Value v)
    {
        auto e = std::make_unique<Expr>();
        e->op = ExprOp::kLiteral;
        e->lit = std::move(v);
        return e;
    }

    static ExprPtr columnRef(std::string table, std::string column)
    {
        auto e = std::make_unique<Expr>();
        e->op = ExprOp::kColumn;
        e->table = std::move(table);
        e->column = std::move(column);
        return e;
    }

    static ExprPtr node(ExprOp op, std::vector<ExprPtr> args)
    {
        auto e = std::make_unique<Expr>();
        e->op = op;
        e->args = std::move(args);
        return e;
    }
};

/** Column definition in CREATE TABLE. */
struct ColumnDef {
    std::string name;
    ValueType type = ValueType::kText;
    bool primaryKey = false;
};

struct CreateTableStmt {
    std::string name;
    std::vector<ColumnDef> columns;
    bool ifNotExists = false;
};

struct CreateIndexStmt {
    std::string name;
    std::string table;
    std::string column;
    bool unique = false;
};

struct DropTableStmt {
    std::string name;
};

struct InsertStmt {
    std::string table;
    std::vector<std::string> columns; ///< empty: positional
    std::vector<std::vector<ExprPtr>> rows;
};

struct SelectItem {
    ExprPtr expr;
    std::string alias;
};

struct JoinClause {
    std::string table;
    std::string alias;
    ExprPtr on;
};

struct SelectStmt {
    std::vector<SelectItem> items;
    std::string table;
    std::string tableAlias;
    std::vector<JoinClause> joins; ///< inner joins, left to right
    ExprPtr where;
    std::vector<ExprPtr> groupBy;
    struct OrderKey {
        ExprPtr expr;
        bool desc = false;
    };
    std::vector<OrderKey> orderBy;
    int64_t limit = -1;
};

struct UpdateStmt {
    std::string table;
    std::vector<std::pair<std::string, ExprPtr>> sets;
    ExprPtr where;
};

struct DeleteStmt {
    std::string table;
    ExprPtr where;
};

struct TxnStmt {
    enum Kind { kBegin, kCommit, kRollback } kind;
};

struct PragmaStmt {
    std::string name;
};

using Stmt =
    std::variant<CreateTableStmt, CreateIndexStmt, DropTableStmt,
                 InsertStmt, SelectStmt, UpdateStmt, DeleteStmt, TxnStmt,
                 PragmaStmt>;

/** Error raised by the SQL layers (parse and execution). */
class SqlError : public std::runtime_error {
  public:
    explicit SqlError(const std::string &what)
        : std::runtime_error("SQL error: " + what) {}
};

} // namespace cubicleos::minisql

#endif // CUBICLEOS_APPS_MINISQL_AST_H_
