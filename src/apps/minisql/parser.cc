#include "apps/minisql/parser.h"

#include <cctype>
#include <cstdlib>

namespace cubicleos::minisql {

namespace {

// --- tokenizer --------------------------------------------------------

enum class Tok : uint8_t {
    kEnd,
    kIdent,
    kKeyword,
    kInt,
    kReal,
    kString,
    kSymbol, ///< punctuation / operator, text in Token::text
};

struct Token {
    Tok kind = Tok::kEnd;
    std::string text;   ///< identifier (as written), keyword (upper),
                        ///< symbol characters
    int64_t intValue = 0;
    double realValue = 0;
};

const char *kKeywords[] = {
    "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "LIMIT",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "CREATE",
    "TABLE", "INDEX", "UNIQUE", "DROP", "ON", "JOIN", "INNER", "AND",
    "OR", "NOT", "LIKE", "BETWEEN", "IN", "AS", "ASC", "DESC", "NULL",
    "PRIMARY", "KEY", "INTEGER", "INT", "REAL", "DOUBLE", "FLOAT",
    "TEXT", "VARCHAR", "CHAR", "BEGIN", "COMMIT", "ROLLBACK",
    "TRANSACTION", "PRAGMA", "IF", "EXISTS", "IS",
};

bool
isKeyword(const std::string &upper)
{
    for (const char *kw : kKeywords) {
        if (upper == kw)
            return true;
    }
    return false;
}

class Lexer {
  public:
    explicit Lexer(const std::string &sql) : s_(sql) {}

    Token next()
    {
        skipSpace();
        Token t;
        if (pos_ >= s_.size())
            return t;

        const char c = s_[pos_];
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string word;
            while (pos_ < s_.size() &&
                   (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
                    s_[pos_] == '_')) {
                word.push_back(s_[pos_++]);
            }
            std::string upper = word;
            for (char &ch : upper)
                ch = static_cast<char>(
                    std::toupper(static_cast<unsigned char>(ch)));
            if (isKeyword(upper)) {
                t.kind = Tok::kKeyword;
                t.text = upper;
            } else {
                t.kind = Tok::kIdent;
                t.text = word;
            }
            return t;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && pos_ + 1 < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_ + 1])))) {
            std::size_t start = pos_;
            bool real = false;
            while (pos_ < s_.size() &&
                   (std::isdigit(
                        static_cast<unsigned char>(s_[pos_])) ||
                    s_[pos_] == '.' || s_[pos_] == 'e' ||
                    s_[pos_] == 'E' ||
                    ((s_[pos_] == '+' || s_[pos_] == '-') && pos_ > start &&
                     (s_[pos_ - 1] == 'e' || s_[pos_ - 1] == 'E')))) {
                if (s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')
                    real = true;
                ++pos_;
            }
            const std::string num = s_.substr(start, pos_ - start);
            if (real) {
                t.kind = Tok::kReal;
                t.realValue = std::strtod(num.c_str(), nullptr);
            } else {
                t.kind = Tok::kInt;
                t.intValue = std::strtoll(num.c_str(), nullptr, 10);
            }
            return t;
        }
        if (c == '\'') {
            ++pos_;
            std::string str;
            while (pos_ < s_.size()) {
                if (s_[pos_] == '\'') {
                    if (pos_ + 1 < s_.size() && s_[pos_ + 1] == '\'') {
                        str.push_back('\'');
                        pos_ += 2;
                        continue;
                    }
                    ++pos_;
                    t.kind = Tok::kString;
                    t.text = std::move(str);
                    return t;
                }
                str.push_back(s_[pos_++]);
            }
            throw SqlError("unterminated string literal");
        }

        // Multi-char operators.
        for (const char *op : {"<>", "<=", ">=", "!=", "=="}) {
            if (s_.compare(pos_, 2, op) == 0) {
                t.kind = Tok::kSymbol;
                t.text = op;
                pos_ += 2;
                return t;
            }
        }
        t.kind = Tok::kSymbol;
        t.text = std::string(1, c);
        ++pos_;
        return t;
    }

  private:
    void skipSpace()
    {
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (std::isspace(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '-' && pos_ + 1 < s_.size() &&
                       s_[pos_ + 1] == '-') {
                while (pos_ < s_.size() && s_[pos_] != '\n')
                    ++pos_;
            } else {
                break;
            }
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

// --- parser -----------------------------------------------------------

class Parser {
  public:
    explicit Parser(const std::string &sql) : lexer_(sql)
    {
        advance();
    }

    std::vector<Stmt> parseAll()
    {
        std::vector<Stmt> stmts;
        for (;;) {
            while (isSymbol(";"))
                advance();
            if (cur_.kind == Tok::kEnd)
                break;
            stmts.push_back(parseStatement());
            if (cur_.kind != Tok::kEnd && !isSymbol(";"))
                fail("expected ';' after statement");
        }
        return stmts;
    }

  private:
    [[noreturn]] void fail(const std::string &msg)
    {
        throw SqlError(msg + " (near '" + cur_.text + "')");
    }

    void advance() { cur_ = lexer_.next(); }

    bool isKw(const char *kw) const
    {
        return cur_.kind == Tok::kKeyword && cur_.text == kw;
    }
    bool isSymbol(const char *sym) const
    {
        return cur_.kind == Tok::kSymbol && cur_.text == sym;
    }
    bool acceptKw(const char *kw)
    {
        if (!isKw(kw))
            return false;
        advance();
        return true;
    }
    bool acceptSymbol(const char *sym)
    {
        if (!isSymbol(sym))
            return false;
        advance();
        return true;
    }
    void expectKw(const char *kw)
    {
        if (!acceptKw(kw))
            fail(std::string("expected ") + kw);
    }
    void expectSymbol(const char *sym)
    {
        if (!acceptSymbol(sym))
            fail(std::string("expected '") + sym + "'");
    }

    std::string expectIdent()
    {
        if (cur_.kind != Tok::kIdent)
            fail("expected identifier");
        std::string name = cur_.text;
        advance();
        return name;
    }

    Stmt parseStatement()
    {
        if (isKw("CREATE"))
            return parseCreate();
        if (isKw("DROP"))
            return parseDrop();
        if (isKw("INSERT"))
            return parseInsert();
        if (isKw("SELECT"))
            return parseSelect();
        if (isKw("UPDATE"))
            return parseUpdate();
        if (isKw("DELETE"))
            return parseDelete();
        if (isKw("BEGIN")) {
            advance();
            acceptKw("TRANSACTION");
            return TxnStmt{TxnStmt::kBegin};
        }
        if (isKw("COMMIT")) {
            advance();
            return TxnStmt{TxnStmt::kCommit};
        }
        if (isKw("ROLLBACK")) {
            advance();
            return TxnStmt{TxnStmt::kRollback};
        }
        if (isKw("PRAGMA")) {
            advance();
            PragmaStmt p;
            p.name = expectIdent();
            return p;
        }
        fail("unknown statement");
    }

    ValueType parseType()
    {
        if (acceptKw("INTEGER") || acceptKw("INT"))
            return ValueType::kInt;
        if (acceptKw("REAL") || acceptKw("DOUBLE") || acceptKw("FLOAT"))
            return ValueType::kReal;
        if (acceptKw("TEXT") || acceptKw("CHAR") ||
            acceptKw("VARCHAR")) {
            // Optional length, e.g. VARCHAR(100).
            if (acceptSymbol("(")) {
                if (cur_.kind == Tok::kInt)
                    advance();
                expectSymbol(")");
            }
            return ValueType::kText;
        }
        fail("expected column type");
    }

    Stmt parseCreate()
    {
        expectKw("CREATE");
        if (acceptKw("TABLE")) {
            CreateTableStmt t;
            if (acceptKw("IF")) {
                expectKw("NOT");
                expectKw("EXISTS");
                t.ifNotExists = true;
            }
            t.name = expectIdent();
            expectSymbol("(");
            do {
                ColumnDef col;
                col.name = expectIdent();
                col.type = parseType();
                if (acceptKw("PRIMARY")) {
                    expectKw("KEY");
                    col.primaryKey = true;
                }
                acceptKw("UNIQUE"); // tolerated, enforced via index
                t.columns.push_back(std::move(col));
            } while (acceptSymbol(","));
            expectSymbol(")");
            return t;
        }
        CreateIndexStmt idx;
        if (acceptKw("UNIQUE"))
            idx.unique = true;
        expectKw("INDEX");
        idx.name = expectIdent();
        expectKw("ON");
        idx.table = expectIdent();
        expectSymbol("(");
        idx.column = expectIdent();
        expectSymbol(")");
        return idx;
    }

    Stmt parseDrop()
    {
        expectKw("DROP");
        expectKw("TABLE");
        DropTableStmt d;
        d.name = expectIdent();
        return d;
    }

    Stmt parseInsert()
    {
        expectKw("INSERT");
        expectKw("INTO");
        InsertStmt ins;
        ins.table = expectIdent();
        if (acceptSymbol("(")) {
            do {
                ins.columns.push_back(expectIdent());
            } while (acceptSymbol(","));
            expectSymbol(")");
        }
        expectKw("VALUES");
        do {
            expectSymbol("(");
            std::vector<ExprPtr> row;
            do {
                row.push_back(parseExpr());
            } while (acceptSymbol(","));
            expectSymbol(")");
            ins.rows.push_back(std::move(row));
        } while (acceptSymbol(","));
        return ins;
    }

    Stmt parseSelect()
    {
        expectKw("SELECT");
        SelectStmt sel;
        do {
            SelectItem item;
            item.expr = parseExpr();
            if (acceptKw("AS"))
                item.alias = expectIdent();
            sel.items.push_back(std::move(item));
        } while (acceptSymbol(","));

        // FROM is optional: "SELECT 1+1" evaluates over a single
        // empty row, as in SQLite.
        if (acceptKw("FROM")) {
            sel.table = expectIdent();
            if (cur_.kind == Tok::kIdent)
                sel.tableAlias = expectIdent();
        }
        while (!sel.table.empty() && (isKw("JOIN") || isKw("INNER"))) {
            acceptKw("INNER");
            expectKw("JOIN");
            JoinClause join;
            join.table = expectIdent();
            if (cur_.kind == Tok::kIdent)
                join.alias = expectIdent();
            expectKw("ON");
            join.on = parseExpr();
            sel.joins.push_back(std::move(join));
        }
        if (acceptKw("WHERE"))
            sel.where = parseExpr();
        if (acceptKw("GROUP")) {
            expectKw("BY");
            do {
                sel.groupBy.push_back(parseExpr());
            } while (acceptSymbol(","));
        }
        if (acceptKw("ORDER")) {
            expectKw("BY");
            do {
                SelectStmt::OrderKey key;
                key.expr = parseExpr();
                if (acceptKw("DESC"))
                    key.desc = true;
                else
                    acceptKw("ASC");
                sel.orderBy.push_back(std::move(key));
            } while (acceptSymbol(","));
        }
        if (acceptKw("LIMIT")) {
            if (cur_.kind != Tok::kInt)
                fail("expected integer LIMIT");
            sel.limit = cur_.intValue;
            advance();
        }
        return sel;
    }

    Stmt parseUpdate()
    {
        expectKw("UPDATE");
        UpdateStmt upd;
        upd.table = expectIdent();
        expectKw("SET");
        do {
            std::string col = expectIdent();
            expectSymbol("=");
            upd.sets.emplace_back(std::move(col), parseExpr());
        } while (acceptSymbol(","));
        if (acceptKw("WHERE"))
            upd.where = parseExpr();
        return upd;
    }

    Stmt parseDelete()
    {
        expectKw("DELETE");
        expectKw("FROM");
        DeleteStmt del;
        del.table = expectIdent();
        if (acceptKw("WHERE"))
            del.where = parseExpr();
        return del;
    }

    // Expression precedence climbing.
    ExprPtr parseExpr() { return parseOr(); }

    ExprPtr parseOr()
    {
        ExprPtr lhs = parseAnd();
        while (acceptKw("OR")) {
            std::vector<ExprPtr> args;
            args.push_back(std::move(lhs));
            args.push_back(parseAnd());
            lhs = Expr::node(ExprOp::kOr, std::move(args));
        }
        return lhs;
    }

    ExprPtr parseAnd()
    {
        ExprPtr lhs = parseNot();
        while (acceptKw("AND")) {
            std::vector<ExprPtr> args;
            args.push_back(std::move(lhs));
            args.push_back(parseNot());
            lhs = Expr::node(ExprOp::kAnd, std::move(args));
        }
        return lhs;
    }

    ExprPtr parseNot()
    {
        if (acceptKw("NOT")) {
            std::vector<ExprPtr> args;
            args.push_back(parseNot());
            return Expr::node(ExprOp::kNot, std::move(args));
        }
        return parseComparison();
    }

    ExprPtr parseComparison()
    {
        ExprPtr lhs = parseAdditive();
        for (;;) {
            ExprOp op;
            if (isSymbol("=") || isSymbol("==")) {
                op = ExprOp::kEq;
            } else if (isSymbol("!=") || isSymbol("<>")) {
                op = ExprOp::kNe;
            } else if (isSymbol("<")) {
                op = ExprOp::kLt;
            } else if (isSymbol("<=")) {
                op = ExprOp::kLe;
            } else if (isSymbol(">")) {
                op = ExprOp::kGt;
            } else if (isSymbol(">=")) {
                op = ExprOp::kGe;
            } else if (isKw("LIKE")) {
                advance();
                std::vector<ExprPtr> args;
                args.push_back(std::move(lhs));
                args.push_back(parseAdditive());
                lhs = Expr::node(ExprOp::kLike, std::move(args));
                continue;
            } else if (isKw("BETWEEN")) {
                advance();
                std::vector<ExprPtr> args;
                args.push_back(std::move(lhs));
                args.push_back(parseAdditive());
                expectKw("AND");
                args.push_back(parseAdditive());
                lhs = Expr::node(ExprOp::kBetween, std::move(args));
                continue;
            } else if (isKw("IN")) {
                advance();
                expectSymbol("(");
                std::vector<ExprPtr> args;
                args.push_back(std::move(lhs));
                do {
                    args.push_back(parseExpr());
                } while (acceptSymbol(","));
                expectSymbol(")");
                lhs = Expr::node(ExprOp::kIn, std::move(args));
                continue;
            } else if (isKw("IS")) {
                // IS [NOT] NULL sugar over equality with NULL.
                advance();
                const bool negate = acceptKw("NOT");
                expectKw("NULL");
                std::vector<ExprPtr> args;
                args.push_back(std::move(lhs));
                args.push_back(Expr::literal(Value::null()));
                lhs = Expr::node(ExprOp::kEq, std::move(args));
                if (negate) {
                    std::vector<ExprPtr> not_args;
                    not_args.push_back(std::move(lhs));
                    lhs = Expr::node(ExprOp::kNot, std::move(not_args));
                }
                continue;
            } else {
                return lhs;
            }
            advance();
            std::vector<ExprPtr> args;
            args.push_back(std::move(lhs));
            args.push_back(parseAdditive());
            lhs = Expr::node(op, std::move(args));
        }
    }

    ExprPtr parseAdditive()
    {
        ExprPtr lhs = parseMultiplicative();
        for (;;) {
            ExprOp op;
            if (isSymbol("+"))
                op = ExprOp::kAdd;
            else if (isSymbol("-"))
                op = ExprOp::kSub;
            else
                return lhs;
            advance();
            std::vector<ExprPtr> args;
            args.push_back(std::move(lhs));
            args.push_back(parseMultiplicative());
            lhs = Expr::node(op, std::move(args));
        }
    }

    ExprPtr parseMultiplicative()
    {
        ExprPtr lhs = parseUnary();
        for (;;) {
            ExprOp op;
            if (isSymbol("*"))
                op = ExprOp::kMul;
            else if (isSymbol("/"))
                op = ExprOp::kDiv;
            else if (isSymbol("%"))
                op = ExprOp::kMod;
            else
                return lhs;
            advance();
            std::vector<ExprPtr> args;
            args.push_back(std::move(lhs));
            args.push_back(parseUnary());
            lhs = Expr::node(op, std::move(args));
        }
    }

    ExprPtr parseUnary()
    {
        if (acceptSymbol("-")) {
            std::vector<ExprPtr> args;
            args.push_back(parseUnary());
            return Expr::node(ExprOp::kNeg, std::move(args));
        }
        acceptSymbol("+");
        return parsePrimary();
    }

    ExprPtr parsePrimary()
    {
        if (cur_.kind == Tok::kInt) {
            auto e = Expr::literal(Value(cur_.intValue));
            advance();
            return e;
        }
        if (cur_.kind == Tok::kReal) {
            auto e = Expr::literal(Value(cur_.realValue));
            advance();
            return e;
        }
        if (cur_.kind == Tok::kString) {
            auto e = Expr::literal(Value(cur_.text));
            advance();
            return e;
        }
        if (isKw("NULL")) {
            advance();
            return Expr::literal(Value::null());
        }
        if (acceptSymbol("(")) {
            ExprPtr e = parseExpr();
            expectSymbol(")");
            return e;
        }
        if (isSymbol("*")) {
            advance();
            return Expr::node(ExprOp::kStar, {});
        }
        if (cur_.kind == Tok::kIdent) {
            std::string name = cur_.text;
            advance();
            if (acceptSymbol("(")) {
                // Aggregate call.
                auto e = std::make_unique<Expr>();
                e->op = ExprOp::kCall;
                e->func = name;
                for (char &ch : e->func)
                    ch = static_cast<char>(
                        std::tolower(static_cast<unsigned char>(ch)));
                if (!acceptSymbol(")")) {
                    do {
                        if (isSymbol("*")) {
                            advance();
                            e->args.push_back(
                                Expr::node(ExprOp::kStar, {}));
                        } else {
                            e->args.push_back(parseExpr());
                        }
                    } while (acceptSymbol(","));
                    expectSymbol(")");
                }
                return e;
            }
            if (acceptSymbol(".")) {
                std::string column = expectIdent();
                return Expr::columnRef(std::move(name),
                                       std::move(column));
            }
            return Expr::columnRef("", std::move(name));
        }
        fail("expected expression");
    }

    Lexer lexer_;
    Token cur_;
};

} // namespace

std::vector<Stmt>
parseSql(const std::string &sql)
{
    Parser parser(sql);
    return parser.parseAll();
}

} // namespace cubicleos::minisql
