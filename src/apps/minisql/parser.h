/**
 * @file
 * SQL tokenizer and recursive-descent parser for the minisql subset.
 */

#ifndef CUBICLEOS_APPS_MINISQL_PARSER_H_
#define CUBICLEOS_APPS_MINISQL_PARSER_H_

#include <string>
#include <vector>

#include "apps/minisql/ast.h"

namespace cubicleos::minisql {

/**
 * Parses @p sql into a list of statements (semicolon separated).
 * @throws SqlError on syntax errors.
 */
std::vector<Stmt> parseSql(const std::string &sql);

} // namespace cubicleos::minisql

#endif // CUBICLEOS_APPS_MINISQL_PARSER_H_
