#include "apps/minisql/btree.h"

#include <cassert>
#include <cstring>

namespace cubicleos::minisql {

namespace {

constexpr uint8_t kLeaf = 1;
constexpr uint8_t kInterior = 2;
constexpr std::size_t kHdrSize = 12;

/** Node header at the start of every btree page. */
struct NodeHdr {
    uint8_t type;
    uint8_t pad;
    uint16_t ncells;
    uint16_t cellStart; ///< lowest used content offset
    uint16_t frag;      ///< bytes freed by cell removal
    uint32_t right;     ///< leaf: next sibling; interior: rightmost child
};
static_assert(sizeof(NodeHdr) == kHdrSize);

/** Raw accessors over one btree page. */
class Node {
  public:
    explicit Node(uint8_t *data) : d_(data) {}

    NodeHdr *hdr() { return reinterpret_cast<NodeHdr *>(d_); }
    const NodeHdr *hdr() const
    {
        return reinterpret_cast<const NodeHdr *>(d_);
    }

    bool leaf() const { return hdr()->type == kLeaf; }
    uint16_t ncells() const { return hdr()->ncells; }

    uint16_t cellOffset(uint16_t i) const
    {
        uint16_t off;
        std::memcpy(&off, d_ + kHdrSize + 2 * i, 2);
        return off;
    }

    void setCellOffset(uint16_t i, uint16_t off)
    {
        std::memcpy(d_ + kHdrSize + 2 * i, &off, 2);
    }

    std::span<const uint8_t> cellKey(uint16_t i) const
    {
        const uint8_t *cell = d_ + cellOffset(i);
        uint16_t klen;
        std::memcpy(&klen, cell, 2);
        return {cell + (leaf() ? 4 : 6), klen};
    }

    std::span<const uint8_t> cellValue(uint16_t i) const
    {
        assert(leaf());
        const uint8_t *cell = d_ + cellOffset(i);
        uint16_t klen, vlen;
        std::memcpy(&klen, cell, 2);
        std::memcpy(&vlen, cell + 2, 2);
        return {cell + 4 + klen, vlen};
    }

    uint32_t cellChild(uint16_t i) const
    {
        assert(!leaf());
        uint32_t child;
        std::memcpy(&child, d_ + cellOffset(i) + 2, 4);
        return child;
    }

    void setCellChild(uint16_t i, uint32_t child)
    {
        assert(!leaf());
        std::memcpy(d_ + cellOffset(i) + 2, &child, 4);
    }

    std::size_t cellSize(uint16_t i) const
    {
        const uint8_t *cell = d_ + cellOffset(i);
        uint16_t klen;
        std::memcpy(&klen, cell, 2);
        if (leaf()) {
            uint16_t vlen;
            std::memcpy(&vlen, cell + 2, 2);
            return 4 + klen + vlen;
        }
        return 6 + klen;
    }

    std::size_t freeSpace() const
    {
        return hdr()->cellStart - (kHdrSize + 2 * ncells());
    }

    void initialise(uint8_t type)
    {
        std::memset(d_, 0, kDbPageSize);
        hdr()->type = type;
        hdr()->cellStart = static_cast<uint16_t>(kDbPageSize);
    }

    /** First index whose key >= @p key; sets @p exact on equality. */
    uint16_t lowerBound(std::span<const uint8_t> key, bool *exact) const
    {
        if (exact)
            *exact = false;
        uint16_t lo = 0, hi = ncells();
        while (lo < hi) {
            const uint16_t mid = (lo + hi) / 2;
            const auto mk = cellKey(mid);
            const int c = compareKeys(mk, key);
            if (c < 0) {
                lo = mid + 1;
            } else {
                if (c == 0 && exact)
                    *exact = true;
                hi = mid;
            }
        }
        return lo;
    }

    static int compareKeys(std::span<const uint8_t> a,
                           std::span<const uint8_t> b)
    {
        const std::size_t n = std::min(a.size(), b.size());
        const int c = n ? std::memcmp(a.data(), b.data(), n) : 0;
        if (c != 0)
            return c;
        return a.size() < b.size() ? -1 : a.size() > b.size() ? 1 : 0;
    }

    /**
     * Inserts a cell at position @p i.
     * @return false if the page lacks contiguous space (compact or
     *         split first).
     */
    bool insertLeafCell(uint16_t i, std::span<const uint8_t> key,
                        std::span<const uint8_t> value)
    {
        const std::size_t size = 4 + key.size() + value.size();
        if (freeSpace() < size + 2)
            return false;
        const auto off =
            static_cast<uint16_t>(hdr()->cellStart - size);
        uint8_t *cell = d_ + off;
        const auto klen = static_cast<uint16_t>(key.size());
        const auto vlen = static_cast<uint16_t>(value.size());
        std::memcpy(cell, &klen, 2);
        std::memcpy(cell + 2, &vlen, 2);
        std::memcpy(cell + 4, key.data(), key.size());
        if (!value.empty())
            std::memcpy(cell + 4 + key.size(), value.data(),
                        value.size());
        openSlot(i, off);
        hdr()->cellStart = off;
        return true;
    }

    bool insertInteriorCell(uint16_t i, std::span<const uint8_t> key,
                            uint32_t child)
    {
        const std::size_t size = 6 + key.size();
        if (freeSpace() < size + 2)
            return false;
        const auto off =
            static_cast<uint16_t>(hdr()->cellStart - size);
        uint8_t *cell = d_ + off;
        const auto klen = static_cast<uint16_t>(key.size());
        std::memcpy(cell, &klen, 2);
        std::memcpy(cell + 2, &child, 4);
        std::memcpy(cell + 6, key.data(), key.size());
        openSlot(i, off);
        hdr()->cellStart = off;
        return true;
    }

    void removeCell(uint16_t i)
    {
        hdr()->frag =
            static_cast<uint16_t>(hdr()->frag + cellSize(i));
        std::memmove(d_ + kHdrSize + 2 * i, d_ + kHdrSize + 2 * (i + 1),
                     2 * (ncells() - i - 1));
        hdr()->ncells--;
    }

    /** Rewrites the page dropping fragmentation. */
    void compact()
    {
        std::vector<uint8_t> copy(d_, d_ + kDbPageSize);
        Node old(copy.data());
        const uint8_t type = hdr()->type;
        const uint32_t right = hdr()->right;
        const uint16_t n = old.ncells();
        initialise(type);
        hdr()->right = right;
        for (uint16_t i = 0; i < n; ++i) {
            if (type == kLeaf) {
                insertLeafCell(i, old.cellKey(i), old.cellValue(i));
            } else {
                insertInteriorCell(i, old.cellKey(i), old.cellChild(i));
            }
        }
    }

  private:
    void openSlot(uint16_t i, uint16_t off)
    {
        std::memmove(d_ + kHdrSize + 2 * (i + 1), d_ + kHdrSize + 2 * i,
                     2 * (ncells() - i));
        hdr()->ncells++;
        setCellOffset(i, off);
    }

    uint8_t *d_;
};

/** Materialised cell for redistribution during splits. */
struct FlatCell {
    std::vector<uint8_t> key;
    std::vector<uint8_t> value; ///< leaf payload
    uint32_t child = 0;         ///< interior child

    std::size_t size(bool leaf) const
    {
        return leaf ? 4 + key.size() + value.size() : 6 + key.size();
    }
};

std::vector<FlatCell>
flatten(const Node &node)
{
    std::vector<FlatCell> cells;
    cells.reserve(node.ncells());
    for (uint16_t i = 0; i < node.ncells(); ++i) {
        FlatCell fc;
        const auto k = node.cellKey(i);
        fc.key.assign(k.begin(), k.end());
        if (node.leaf()) {
            const auto v = node.cellValue(i);
            fc.value.assign(v.begin(), v.end());
        } else {
            fc.child = node.cellChild(i);
        }
        cells.push_back(std::move(fc));
    }
    return cells;
}

} // namespace

// ----------------------------------------------------------------------

BTree::BTree(Pager *pager, uint32_t root) : pager_(pager), root_(root) {}

uint32_t
BTree::create(Pager *pager)
{
    const uint32_t pgno = pager->allocatePage();
    DbPage *page = pager->fetch(pgno);
    pager->markDirty(page);
    Node(page->data).initialise(kLeaf);
    pager->release(page);
    return pgno;
}

std::optional<BTree::Split>
BTree::insertInto(uint32_t pgno, Bytes key, Bytes value, bool *inserted)
{
    DbPage *page = pager_->fetch(pgno);
    Node node(page->data);

    if (node.leaf()) {
        bool exact = false;
        uint16_t pos = node.lowerBound(key, &exact);
        pager_->markDirty(page);
        if (exact) {
            node.removeCell(pos);
            *inserted = false;
        } else {
            *inserted = true;
        }
        if (node.insertLeafCell(pos, key, value)) {
            pager_->release(page);
            return std::nullopt;
        }
        if (node.hdr()->frag > 0) {
            node.compact();
            if (node.insertLeafCell(pos, key, value)) {
                pager_->release(page);
                return std::nullopt;
            }
        }

        // Split: materialise all cells plus the new one, redistribute
        // by bytes.
        auto cells = flatten(node);
        FlatCell fresh;
        fresh.key.assign(key.begin(), key.end());
        fresh.value.assign(value.begin(), value.end());
        cells.insert(cells.begin() + pos, std::move(fresh));

        const uint32_t right_pgno = pager_->allocatePage();
        DbPage *right_page = pager_->fetch(right_pgno);
        pager_->markDirty(right_page);
        Node right(right_page->data);
        right.initialise(kLeaf);
        right.hdr()->right = node.hdr()->right;

        std::size_t total = 0;
        for (const auto &c : cells)
            total += c.size(true);
        const uint32_t old_sibling = node.hdr()->right;
        (void)old_sibling;
        node.initialise(kLeaf);
        node.hdr()->right = right_pgno;

        std::size_t acc = 0;
        uint16_t li = 0, ri = 0;
        for (const auto &c : cells) {
            if (acc < total / 2) {
                node.insertLeafCell(li++, c.key, c.value);
                acc += c.size(true);
            } else {
                right.insertLeafCell(ri++, c.key, c.value);
            }
        }
        Split split;
        split.sepKey.assign(node.cellKey(node.ncells() - 1).begin(),
                            node.cellKey(node.ncells() - 1).end());
        split.rightPage = right_pgno;
        pager_->release(right_page);
        pager_->release(page);
        return split;
    }

    // Interior node: descend.
    bool exact = false;
    uint16_t idx = node.lowerBound(key, &exact);
    const uint32_t child =
        idx < node.ncells() ? node.cellChild(idx) : node.hdr()->right;
    auto child_split = insertInto(child, key, value, inserted);
    if (!child_split) {
        pager_->release(page);
        return std::nullopt;
    }

    // The child split into (child, rightPage) separated by sepKey.
    pager_->markDirty(page);
    auto insert_sep = [&](uint16_t at) -> bool {
        if (node.insertInteriorCell(at, child_split->sepKey, child))
            return true;
        if (node.hdr()->frag > 0) {
            node.compact();
            return node.insertInteriorCell(at, child_split->sepKey,
                                           child);
        }
        return false;
    };

    bool fits;
    if (idx < node.ncells()) {
        fits = insert_sep(idx);
        if (fits)
            node.setCellChild(idx + 1, child_split->rightPage);
    } else {
        fits = insert_sep(idx);
        if (fits)
            node.hdr()->right = child_split->rightPage;
    }
    if (fits) {
        pager_->release(page);
        return std::nullopt;
    }

    // Interior overflow: rebuild with the new cell included, split at
    // the middle separator.
    auto cells = flatten(node);
    FlatCell fresh;
    fresh.key = child_split->sepKey;
    fresh.child = child;
    cells.insert(cells.begin() + idx, std::move(fresh));
    uint32_t rightmost = node.hdr()->right;
    if (idx < cells.size() - 1) {
        cells[idx + 1].child = child_split->rightPage;
    } else {
        rightmost = child_split->rightPage;
    }

    const uint16_t mid = static_cast<uint16_t>(cells.size() / 2);
    const uint32_t right_pgno = pager_->allocatePage();
    DbPage *right_page = pager_->fetch(right_pgno);
    pager_->markDirty(right_page);
    Node right(right_page->data);
    right.initialise(kInterior);
    right.hdr()->right = rightmost;

    node.initialise(kInterior);
    node.hdr()->right = cells[mid].child;
    for (uint16_t i = 0; i < mid; ++i)
        node.insertInteriorCell(i, cells[i].key, cells[i].child);
    for (uint16_t i = mid + 1; i < cells.size(); ++i)
        right.insertInteriorCell(static_cast<uint16_t>(i - mid - 1),
                                 cells[i].key, cells[i].child);

    Split split;
    split.sepKey = std::move(cells[mid].key);
    split.rightPage = right_pgno;
    pager_->release(right_page);
    pager_->release(page);
    return split;
}

void
BTree::handleRootSplit(const Split &split)
{
    // Keep the root page number stable: copy the (left-half) root into
    // a fresh page and rewrite the root as a one-cell interior node.
    const uint32_t left_pgno = pager_->allocatePage();
    DbPage *left_page = pager_->fetch(left_pgno);
    DbPage *root_page = pager_->fetch(root_);
    pager_->markDirty(left_page);
    pager_->markDirty(root_page);
    std::memcpy(left_page->data, root_page->data, kDbPageSize);

    Node root(root_page->data);
    root.initialise(kInterior);
    root.hdr()->right = split.rightPage;
    root.insertInteriorCell(0, split.sepKey, left_pgno);

    pager_->release(left_page);
    pager_->release(root_page);
}

bool
BTree::insert(Bytes key, Bytes value)
{
    assert(key.size() + value.size() <= kMaxEntryBytes);
    bool inserted = false;
    auto split = insertInto(root_, key, value, &inserted);
    if (split)
        handleRootSplit(*split);
    return inserted;
}

uint32_t
BTree::findLeaf(Bytes key) const
{
    uint32_t pgno = root_;
    for (;;) {
        DbPage *page = pager_->fetch(pgno);
        Node node(page->data);
        if (node.leaf()) {
            pager_->release(page);
            return pgno;
        }
        const uint16_t idx = node.lowerBound(key, nullptr);
        pgno = idx < node.ncells() ? node.cellChild(idx)
                                   : node.hdr()->right;
        pager_->release(page);
    }
}

bool
BTree::erase(Bytes key)
{
    const uint32_t leaf = findLeaf(key);
    DbPage *page = pager_->fetch(leaf);
    Node node(page->data);
    bool exact = false;
    const uint16_t pos = node.lowerBound(key, &exact);
    if (!exact) {
        pager_->release(page);
        return false;
    }
    pager_->markDirty(page);
    node.removeCell(pos);
    pager_->release(page);
    return true;
}

bool
BTree::find(Bytes key, std::vector<uint8_t> *value)
{
    const uint32_t leaf = findLeaf(key);
    DbPage *page = pager_->fetch(leaf);
    Node node(page->data);
    bool exact = false;
    const uint16_t pos = node.lowerBound(key, &exact);
    if (exact && value) {
        const auto v = node.cellValue(pos);
        value->assign(v.begin(), v.end());
    }
    pager_->release(page);
    return exact;
}

uint64_t
BTree::countEntries()
{
    uint64_t n = 0;
    Cursor cur = cursor();
    for (cur.seekFirst(); cur.valid(); cur.next())
        ++n;
    return n;
}

// --- cursor -----------------------------------------------------------

void
BTree::Cursor::seekFirst()
{
    uint32_t pgno = tree_->root_;
    for (;;) {
        DbPage *page = tree_->pager_->fetch(pgno);
        Node node(page->data);
        if (node.leaf()) {
            tree_->pager_->release(page);
            break;
        }
        const uint32_t next =
            node.ncells() > 0 ? node.cellChild(0) : node.hdr()->right;
        tree_->pager_->release(page);
        pgno = next;
    }
    leaf_ = pgno;
    index_ = 0;
    valid_ = true;
    skipEmptyLeaves();
}

void
BTree::Cursor::seek(Bytes key, bool *exact)
{
    leaf_ = tree_->findLeaf(key);
    DbPage *page = tree_->pager_->fetch(leaf_);
    Node node(page->data);
    bool ex = false;
    index_ = node.lowerBound(key, &ex);
    if (exact)
        *exact = ex;
    valid_ = true;
    tree_->pager_->release(page);
    skipEmptyLeaves();
}

void
BTree::Cursor::skipEmptyLeaves()
{
    for (;;) {
        DbPage *page = tree_->pager_->fetch(leaf_);
        Node node(page->data);
        if (index_ < node.ncells()) {
            tree_->pager_->release(page);
            return;
        }
        const uint32_t next = node.hdr()->right;
        tree_->pager_->release(page);
        if (next == 0) {
            valid_ = false;
            return;
        }
        leaf_ = next;
        index_ = 0;
    }
}

void
BTree::Cursor::next()
{
    assert(valid_);
    ++index_;
    skipEmptyLeaves();
}

std::vector<uint8_t>
BTree::Cursor::key() const
{
    DbPage *page = tree_->pager_->fetch(leaf_);
    Node node(page->data);
    const auto k = node.cellKey(static_cast<uint16_t>(index_));
    std::vector<uint8_t> out(k.begin(), k.end());
    tree_->pager_->release(page);
    return out;
}

std::vector<uint8_t>
BTree::Cursor::value() const
{
    DbPage *page = tree_->pager_->fetch(leaf_);
    Node node(page->data);
    const auto v = node.cellValue(static_cast<uint16_t>(index_));
    std::vector<uint8_t> out(v.begin(), v.end());
    tree_->pager_->release(page);
    return out;
}

// --- validation -------------------------------------------------------

bool
BTree::validatePage(uint32_t pgno, const std::vector<uint8_t> *lo,
                    const std::vector<uint8_t> *hi, int depth,
                    int *leaf_depth, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = "page " + std::to_string(pgno) + ": " + msg;
        return false;
    };
    if (depth > 64)
        return fail("depth exceeds 64 (cycle?)");

    DbPage *page = pager_->fetch(pgno);
    Node node(page->data);
    const bool is_leaf = node.leaf();
    if (node.hdr()->type != kLeaf && node.hdr()->type != kInterior) {
        pager_->release(page);
        return fail("bad node type");
    }

    // Ordering and bounds.
    std::vector<uint8_t> prev;
    bool have_prev = false;
    for (uint16_t i = 0; i < node.ncells(); ++i) {
        const auto k = node.cellKey(i);
        std::vector<uint8_t> key(k.begin(), k.end());
        if (have_prev && Node::compareKeys(prev, key) >= 0) {
            pager_->release(page);
            return fail("cells out of order");
        }
        if (lo && Node::compareKeys(*lo, key) >= 0) {
            pager_->release(page);
            return fail("key below lower bound");
        }
        if (hi && Node::compareKeys(key, *hi) > 0) {
            pager_->release(page);
            return fail("key above upper bound");
        }
        prev = std::move(key);
        have_prev = true;
    }

    if (is_leaf) {
        if (*leaf_depth == -1)
            *leaf_depth = depth;
        if (*leaf_depth != depth) {
            pager_->release(page);
            return fail("leaves at different depths");
        }
        pager_->release(page);
        return true;
    }

    // Recurse into children with tightened bounds.
    std::vector<uint8_t> lower = lo ? *lo : std::vector<uint8_t>{};
    const uint16_t n = node.ncells();
    std::vector<std::pair<uint32_t, std::vector<uint8_t>>> children;
    for (uint16_t i = 0; i < n; ++i) {
        const auto k = node.cellKey(i);
        children.emplace_back(node.cellChild(i),
                              std::vector<uint8_t>(k.begin(), k.end()));
    }
    const uint32_t rightmost = node.hdr()->right;
    pager_->release(page);

    const std::vector<uint8_t> *cur_lo = lo;
    std::vector<uint8_t> prev_sep;
    for (auto &[child, sep] : children) {
        if (!validatePage(child, cur_lo, &sep, depth + 1, leaf_depth,
                          error)) {
            return false;
        }
        prev_sep = sep;
        cur_lo = &prev_sep;
    }
    return validatePage(rightmost, cur_lo, hi, depth + 1, leaf_depth,
                        error);
}

bool
BTree::validate(std::string *error)
{
    int leaf_depth = -1;
    return validatePage(root_, nullptr, nullptr, 0, &leaf_depth, error);
}

} // namespace cubicleos::minisql
