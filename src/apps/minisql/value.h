/**
 * @file
 * SQL values: a small dynamically-typed variant (NULL, INTEGER, REAL,
 * TEXT) with SQLite-flavoured comparison and arithmetic semantics, and
 * an order-preserving binary key encoding used by the B+tree.
 */

#ifndef CUBICLEOS_APPS_MINISQL_VALUE_H_
#define CUBICLEOS_APPS_MINISQL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace cubicleos::minisql {

/** SQL storage classes. */
enum class ValueType : uint8_t {
    kNull = 0,
    kInt = 1,
    kReal = 2,
    kText = 3,
};

/** One SQL value. */
class Value {
  public:
    Value() : v_(std::monostate{}) {}
    explicit Value(int64_t i) : v_(i) {}
    explicit Value(double d) : v_(d) {}
    explicit Value(std::string s) : v_(std::move(s)) {}

    static Value null() { return Value(); }

    ValueType type() const
    {
        return static_cast<ValueType>(v_.index());
    }

    bool isNull() const { return type() == ValueType::kNull; }
    int64_t asInt() const;   ///< numeric coercion (0 for non-numeric)
    double asReal() const;   ///< numeric coercion
    /** Text rendering (SQL display form). */
    std::string asText() const;
    const std::string &text() const { return std::get<std::string>(v_); }

    /**
     * Three-way comparison with SQLite ordering: NULL < numbers <
     * text; INTEGER and REAL compare numerically across types.
     */
    int compare(const Value &other) const;

    bool operator==(const Value &other) const
    {
        return compare(other) == 0;
    }

    /** SQL truthiness: non-zero number; NULL and text are false. */
    bool truthy() const;

    /**
     * Appends an order-preserving key encoding: memcmp order over the
     * encodings equals compare() order. Used for B+tree keys.
     */
    void encodeKey(std::vector<uint8_t> *out) const;

    /** Appends a compact tagged record encoding (not order-preserving). */
    void encodeRecord(std::vector<uint8_t> *out) const;

    /** Decodes one record-encoded value; advances @p pos. */
    static Value decodeRecord(const uint8_t *data, std::size_t size,
                              std::size_t *pos);

  private:
    std::variant<std::monostate, int64_t, double, std::string> v_;
};

/** A row of values. */
using Row = std::vector<Value>;

/** Encodes a whole row in record format. */
std::vector<uint8_t> encodeRow(const Row &row);

/** Decodes a record-format row. */
Row decodeRow(const uint8_t *data, std::size_t size);

} // namespace cubicleos::minisql

#endif // CUBICLEOS_APPS_MINISQL_VALUE_H_
