#include "apps/minisql/value.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace cubicleos::minisql {

int64_t
Value::asInt() const
{
    switch (type()) {
      case ValueType::kInt:
        return std::get<int64_t>(v_);
      case ValueType::kReal:
        return static_cast<int64_t>(std::get<double>(v_));
      case ValueType::kText:
        return std::strtoll(text().c_str(), nullptr, 10);
      default:
        return 0;
    }
}

double
Value::asReal() const
{
    switch (type()) {
      case ValueType::kInt:
        return static_cast<double>(std::get<int64_t>(v_));
      case ValueType::kReal:
        return std::get<double>(v_);
      case ValueType::kText:
        return std::strtod(text().c_str(), nullptr);
      default:
        return 0.0;
    }
}

std::string
Value::asText() const
{
    switch (type()) {
      case ValueType::kNull:
        return "NULL";
      case ValueType::kInt:
        return std::to_string(std::get<int64_t>(v_));
      case ValueType::kReal: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.12g", std::get<double>(v_));
        return buf;
      }
      case ValueType::kText:
        return text();
    }
    return "";
}

namespace {

/** Storage-class rank for cross-type ordering (NULL < numeric < text). */
int
rank(ValueType t)
{
    switch (t) {
      case ValueType::kNull: return 0;
      case ValueType::kInt:
      case ValueType::kReal: return 1;
      case ValueType::kText: return 2;
    }
    return 3;
}

} // namespace

int
Value::compare(const Value &other) const
{
    const int ra = rank(type());
    const int rb = rank(other.type());
    if (ra != rb)
        return ra < rb ? -1 : 1;
    switch (rank(type())) {
      case 0:
        return 0; // NULLs equal for ordering purposes
      case 1: {
        if (type() == ValueType::kInt &&
            other.type() == ValueType::kInt) {
            const int64_t a = std::get<int64_t>(v_);
            const int64_t b = std::get<int64_t>(other.v_);
            return a < b ? -1 : a > b ? 1 : 0;
        }
        const double a = asReal();
        const double b = other.asReal();
        return a < b ? -1 : a > b ? 1 : 0;
      }
      default: {
        const int c = text().compare(other.text());
        return c < 0 ? -1 : c > 0 ? 1 : 0;
      }
    }
}

bool
Value::truthy() const
{
    switch (type()) {
      case ValueType::kInt:
        return std::get<int64_t>(v_) != 0;
      case ValueType::kReal:
        return std::get<double>(v_) != 0.0;
      default:
        return false;
    }
}

// --- key encoding -----------------------------------------------------
//
// Tags chosen so memcmp order matches compare(): 0x05 NULL, 0x10
// numeric, 0x30 text. Numbers (including REAL) are encoded through a
// common order-preserving double encoding when mixed; pure integers
// use a big-endian sign-flipped form under the same tag by mapping
// them through double would lose precision, so integers are encoded
// as 9 bytes: 0x10, then sign-flipped big-endian int64; reals as
// 0x10, then the IEEE-754 order-preserving transform. To keep both
// comparable, integers outside the exact-double range fall back to
// the integer form with a sub-tag.

namespace {

void
putU64BigEndian(uint64_t v, std::vector<uint8_t> *out)
{
    for (int shift = 56; shift >= 0; shift -= 8)
        out->push_back(static_cast<uint8_t>(v >> shift));
}

uint64_t
getU64BigEndian(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v = (v << 8) | p[i];
    return v;
}

/** IEEE-754 double -> uint64 with memcmp order == numeric order. */
uint64_t
doubleToOrdered(double d)
{
    uint64_t bits;
    std::memcpy(&bits, &d, 8);
    if (bits & (1ull << 63))
        return ~bits; // negative: flip everything
    return bits | (1ull << 63); // positive: flip sign bit
}

double
orderedToDouble(uint64_t enc)
{
    uint64_t bits;
    if (enc & (1ull << 63))
        bits = enc & ~(1ull << 63);
    else
        bits = ~enc;
    double d;
    std::memcpy(&d, &bits, 8);
    return d;
}

} // namespace

void
Value::encodeKey(std::vector<uint8_t> *out) const
{
    switch (type()) {
      case ValueType::kNull:
        out->push_back(0x05);
        break;
      case ValueType::kInt:
      case ValueType::kReal: {
        // Numeric: common tag + ordered double encoding. Integers are
        // exact up to 2^53, ample for the workloads; the raw integer
        // is appended after the ordered form so exact round-trips work
        // for the full 64-bit range while ordering stays numeric.
        out->push_back(0x10);
        putU64BigEndian(doubleToOrdered(asReal()), out);
        if (type() == ValueType::kInt) {
            out->push_back(0x01);
            putU64BigEndian(static_cast<uint64_t>(asInt()), out);
        } else {
            out->push_back(0x02);
            uint64_t bits;
            const double d = std::get<double>(v_);
            std::memcpy(&bits, &d, 8);
            putU64BigEndian(bits, out);
        }
        break;
      }
      case ValueType::kText: {
        out->push_back(0x30);
        for (const char ch : text()) {
            // 0x00 escaped as 0x00 0xFF so the 0x00 0x00 terminator
            // stays unambiguous and order-preserving.
            out->push_back(static_cast<uint8_t>(ch));
            if (ch == '\0')
                out->push_back(0xFF);
        }
        out->push_back(0x00);
        out->push_back(0x00);
        break;
      }
    }
}

// --- record encoding ----------------------------------------------------

namespace {

void
putVarint(uint64_t v, std::vector<uint8_t> *out)
{
    while (v >= 0x80) {
        out->push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out->push_back(static_cast<uint8_t>(v));
}

uint64_t
getVarint(const uint8_t *data, std::size_t size, std::size_t *pos)
{
    uint64_t v = 0;
    int shift = 0;
    while (*pos < size) {
        const uint8_t b = data[(*pos)++];
        v |= static_cast<uint64_t>(b & 0x7F) << shift;
        if (!(b & 0x80))
            break;
        shift += 7;
    }
    return v;
}

} // namespace

void
Value::encodeRecord(std::vector<uint8_t> *out) const
{
    out->push_back(static_cast<uint8_t>(type()));
    switch (type()) {
      case ValueType::kNull:
        break;
      case ValueType::kInt:
        putVarint(static_cast<uint64_t>(std::get<int64_t>(v_)), out);
        break;
      case ValueType::kReal: {
        uint64_t bits;
        const double d = std::get<double>(v_);
        std::memcpy(&bits, &d, 8);
        putU64BigEndian(bits, out);
        break;
      }
      case ValueType::kText:
        putVarint(text().size(), out);
        out->insert(out->end(), text().begin(), text().end());
        break;
    }
}

Value
Value::decodeRecord(const uint8_t *data, std::size_t size,
                    std::size_t *pos)
{
    if (*pos >= size)
        return Value();
    const auto tag = static_cast<ValueType>(data[(*pos)++]);
    switch (tag) {
      case ValueType::kNull:
        return Value();
      case ValueType::kInt:
        return Value(
            static_cast<int64_t>(getVarint(data, size, pos)));
      case ValueType::kReal: {
        if (*pos + 8 > size)
            return Value();
        double d;
        const uint64_t bits = getU64BigEndian(data + *pos);
        *pos += 8;
        std::memcpy(&d, &bits, 8);
        return Value(d);
      }
      case ValueType::kText: {
        const uint64_t len = getVarint(data, size, pos);
        if (*pos + len > size)
            return Value();
        std::string s(reinterpret_cast<const char *>(data + *pos),
                      static_cast<std::size_t>(len));
        *pos += static_cast<std::size_t>(len);
        return Value(std::move(s));
      }
    }
    return Value();
}

std::vector<uint8_t>
encodeRow(const Row &row)
{
    std::vector<uint8_t> out;
    putVarint(row.size(), &out);
    for (const Value &v : row)
        v.encodeRecord(&out);
    return out;
}

Row
decodeRow(const uint8_t *data, std::size_t size)
{
    std::size_t pos = 0;
    const uint64_t n = getVarint(data, size, &pos);
    Row row;
    row.reserve(static_cast<std::size_t>(n));
    for (uint64_t i = 0; i < n; ++i)
        row.push_back(Value::decodeRecord(data, size, &pos));
    return row;
}

// Round-trip note: orderedToDouble is used by tests via the key codec
// below; keep the symbol referenced.
double
keyDecodeDoubleForTest(const uint8_t *p)
{
    return orderedToDouble(getU64BigEndian(p));
}

} // namespace cubicleos::minisql
