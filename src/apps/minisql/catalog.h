/**
 * @file
 * Schema catalog: table and index definitions, persisted in a schema
 * B+tree whose root lives in the pager header (SQLite's
 * sqlite_master analogue).
 */

#ifndef CUBICLEOS_APPS_MINISQL_CATALOG_H_
#define CUBICLEOS_APPS_MINISQL_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/minisql/ast.h"
#include "apps/minisql/btree.h"

namespace cubicleos::minisql {

/** A persisted index definition. */
struct IndexDef {
    std::string name;
    std::string table;
    std::string column;
    int columnIndex = -1;
    bool unique = false;
    uint32_t root = 0;
    int64_t objId = 0;
};

/** A persisted table definition. */
struct TableDef {
    std::string name;
    std::vector<ColumnDef> columns;
    /** Column acting as rowid (INTEGER PRIMARY KEY), or -1. */
    int rowidColumn = -1;
    uint32_t root = 0;
    int64_t objId = 0;
    /** Next auto rowid; -1 until computed from the table contents. */
    int64_t nextRowid = -1;

    int columnIndexOf(const std::string &name) const
    {
        for (std::size_t i = 0; i < columns.size(); ++i) {
            if (columns[i].name == name)
                return static_cast<int>(i);
        }
        return -1;
    }
};

/**
 * The schema catalog. All mutations run inside the caller's
 * transaction; load() re-reads the persisted schema.
 */
class Catalog {
  public:
    explicit Catalog(Pager *pager) : pager_(pager) {}

    /** Loads the schema from the file (creates the tree if absent). */
    void load();

    TableDef *table(const std::string &name);
    IndexDef *index(const std::string &name);
    std::vector<IndexDef *> indexesOn(const std::string &table);
    const std::map<std::string, TableDef> &tables() const
    {
        return tables_;
    }

    /** Creates a table (btree + schema row). @throws SqlError. */
    TableDef *createTable(const CreateTableStmt &stmt);
    /** Creates an index definition (empty tree). @throws SqlError. */
    IndexDef *createIndex(const CreateIndexStmt &stmt);
    /** Drops a table, its indexes, and frees their pages. */
    void dropTable(const std::string &name);

  private:
    void persistTable(TableDef *def);
    void persistIndex(IndexDef *def);
    void eraseObject(int64_t obj_id);
    void freeTree(uint32_t root);
    int64_t nextObjId();

    Pager *pager_;
    std::map<std::string, TableDef> tables_;
    std::map<std::string, IndexDef> indexes_;
    int64_t maxObjId_ = 0;
};

} // namespace cubicleos::minisql

#endif // CUBICLEOS_APPS_MINISQL_CATALOG_H_
